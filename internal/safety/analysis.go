package safety

import (
	"fmt"
	"sort"
	"strings"
)

// VSet is a set over VAS identifiers extended with the two special values
// of §4.3: vcommon (the pointer targets the common region) and vunknown
// (the VAS is not statically known). The same representation carries
// VASvalid sets (all three kinds) and VASin/VASout sets (ids + unknown).
type VSet struct {
	ids     map[int]struct{}
	common  bool
	unknown bool
}

// NewVSet builds a set from VAS ids.
func NewVSet(ids ...int) *VSet {
	v := &VSet{ids: map[int]struct{}{}}
	for _, id := range ids {
		v.ids[id] = struct{}{}
	}
	return v
}

// CommonSet returns {vcommon}.
func CommonSet() *VSet { v := NewVSet(); v.common = true; return v }

// UnknownSet returns {vunknown}.
func UnknownSet() *VSet { v := NewVSet(); v.unknown = true; return v }

// Has reports id membership.
func (v *VSet) Has(id int) bool { _, ok := v.ids[id]; return ok }

// HasCommon reports vcommon membership.
func (v *VSet) HasCommon() bool { return v.common }

// HasUnknown reports vunknown membership.
func (v *VSet) HasUnknown() bool { return v.unknown }

// IDCount returns the number of concrete VAS ids.
func (v *VSet) IDCount() int { return len(v.ids) }

// Empty reports a set with no members of any kind — a value that is not a
// pointer as far as the analysis can tell.
func (v *VSet) Empty() bool { return len(v.ids) == 0 && !v.common && !v.unknown }

// union merges o into v, reporting whether v grew.
func (v *VSet) union(o *VSet) bool {
	if o == nil {
		return false
	}
	changed := false
	for id := range o.ids {
		if _, ok := v.ids[id]; !ok {
			v.ids[id] = struct{}{}
			changed = true
		}
	}
	if o.common && !v.common {
		v.common, changed = true, true
	}
	if o.unknown && !v.unknown {
		v.unknown, changed = true, true
	}
	return changed
}

// sameIDs reports whether two sets hold exactly the same concrete ids.
func (v *VSet) sameIDs(o *VSet) bool {
	if len(v.ids) != len(o.ids) {
		return false
	}
	for id := range v.ids {
		if _, ok := o.ids[id]; !ok {
			return false
		}
	}
	return true
}

func (v *VSet) String() string {
	var parts []string
	ids := make([]int, 0, len(v.ids))
	for id := range v.ids {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("v%d", id))
	}
	if v.common {
		parts = append(parts, "vcommon")
	}
	if v.unknown {
		parts = append(parts, "vunknown")
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ",") + "}"
}

type instrKey struct {
	fn, blk string
	idx     int
}

// Analysis is the fixpoint result of the §4.3 dataflow.
type Analysis struct {
	prog *Program

	// InitialVAS is the address space active when the program starts.
	InitialVAS int

	valid    map[string]*VSet // fn + "." + value -> VASvalid
	in, out  map[instrKey]*VSet
	entryIn  map[string]*VSet // function -> union of VASin at callsites
	retOut   map[string]*VSet // function -> union of VASout at rets
	retValid map[string]*VSet // function -> union of VASvalid of returned values
	preds    map[string]map[string][]string
	changed  bool
}

// Analyze runs the interprocedural dataflow to fixpoint.
func Analyze(p *Program) *Analysis {
	a := &Analysis{
		prog: p, InitialVAS: 0,
		valid: map[string]*VSet{}, in: map[instrKey]*VSet{}, out: map[instrKey]*VSet{},
		entryIn: map[string]*VSet{}, retOut: map[string]*VSet{}, retValid: map[string]*VSet{},
		preds: map[string]map[string][]string{},
	}
	for name, f := range p.Funcs {
		a.entryIn[name] = NewVSet()
		a.retOut[name] = NewVSet()
		a.retValid[name] = NewVSet()
		pr := map[string][]string{}
		for _, blk := range f.Blocks {
			last := blk.Instrs[len(blk.Instrs)-1]
			for _, tgt := range last.Blocks {
				pr[tgt] = append(pr[tgt], blk.Name)
			}
		}
		a.preds[name] = pr
	}
	a.entryIn[p.Entry].union(NewVSet(a.InitialVAS))
	for {
		a.changed = false
		for _, f := range p.Funcs {
			a.passFunc(f)
		}
		if !a.changed {
			return a
		}
	}
}

func (a *Analysis) validOf(fn, val string) *VSet {
	key := fn + "." + val
	v, ok := a.valid[key]
	if !ok {
		v = NewVSet()
		a.valid[key] = v
	}
	return v
}

// ValidOf exposes VASvalid for tests and tools.
func (a *Analysis) ValidOf(fn, val string) *VSet { return a.validOf(fn, val) }

// InAt exposes VASin for tests and tools.
func (a *Analysis) InAt(fn, blk string, idx int) *VSet {
	v, ok := a.in[instrKey{fn, blk, idx}]
	if !ok {
		return NewVSet()
	}
	return v
}

func (a *Analysis) mark(changed bool) {
	if changed {
		a.changed = true
	}
}

func (a *Analysis) passFunc(f *Func) {
	for bi, blk := range f.Blocks {
		for idx, ins := range blk.Instrs {
			key := instrKey{f.Name, blk.Name, idx}
			in, ok := a.in[key]
			if !ok {
				in = NewVSet()
				a.in[key] = in
			}
			// Flow in.
			switch {
			case idx > 0:
				a.mark(in.union(a.out[instrKey{f.Name, blk.Name, idx - 1}]))
			case bi == 0:
				a.mark(in.union(a.entryIn[f.Name]))
			}
			if idx == 0 {
				for _, pred := range a.preds[f.Name][blk.Name] {
					pb := f.Block(pred)
					a.mark(in.union(a.out[instrKey{f.Name, pred, len(pb.Instrs) - 1}]))
				}
			}
			out, ok := a.out[key]
			if !ok {
				out = NewVSet()
				a.out[key] = out
			}
			a.transfer(f, ins, in, out)
		}
	}
}

// transfer implements Figure 5's per-instruction effects.
func (a *Analysis) transfer(f *Func, ins *Instr, in, out *VSet) {
	flowThrough := func() { a.mark(out.union(in)) }
	switch ins.Op {
	case OpSwitch:
		if ins.VAS != NoVAS {
			a.mark(out.union(NewVSet(ins.VAS)))
		} else {
			a.mark(out.union(UnknownSet()))
		}
	case OpVCast:
		a.mark(a.validOf(f.Name, ins.Dst).union(NewVSet(ins.VAS)))
		flowThrough()
	case OpAlloca, OpGlobal:
		a.mark(a.validOf(f.Name, ins.Dst).union(CommonSet()))
		flowThrough()
	case OpMalloc:
		a.mark(a.validOf(f.Name, ins.Dst).union(in))
		flowThrough()
	case OpCopy:
		a.mark(a.validOf(f.Name, ins.Dst).union(a.validOf(f.Name, ins.Args[0])))
		flowThrough()
	case OpArith:
		dst := a.validOf(f.Name, ins.Dst)
		for _, arg := range ins.Args {
			a.mark(dst.union(a.validOf(f.Name, arg)))
		}
		flowThrough()
	case OpPhi:
		dst := a.validOf(f.Name, ins.Dst)
		for _, arg := range ins.Args {
			a.mark(dst.union(a.validOf(f.Name, arg)))
		}
		flowThrough()
	case OpLoad:
		pv := a.validOf(f.Name, ins.Args[0])
		dst := a.validOf(f.Name, ins.Dst)
		// Loading from the non-common region yields a pointer valid in
		// the active VAS; loading from the common region (or through an
		// unknown pointer) yields statically unknown provenance.
		if pv.IDCount() > 0 {
			a.mark(dst.union(in))
		}
		if pv.HasCommon() || pv.HasUnknown() || pv.Empty() {
			a.mark(dst.union(UnknownSet()))
		}
		flowThrough()
	case OpStore:
		flowThrough()
	case OpCall:
		callee := a.prog.Funcs[ins.Callee]
		a.mark(a.entryIn[ins.Callee].union(in))
		for k, arg := range ins.Args {
			if k < len(callee.Params) {
				a.mark(a.validOf(ins.Callee, callee.Params[k]).union(a.validOf(f.Name, arg)))
			}
		}
		a.mark(out.union(a.retOut[ins.Callee]))
		if ins.Dst != "" {
			a.mark(a.validOf(f.Name, ins.Dst).union(a.retValid[ins.Callee]))
		}
	case OpRet:
		a.mark(a.retOut[f.Name].union(in))
		if len(ins.Args) > 0 {
			a.mark(a.retValid[f.Name].union(a.validOf(f.Name, ins.Args[0])))
		}
		flowThrough()
	default: // const, br, condbr, checks
		flowThrough()
	}
}

// DiagKind classifies a diagnostic.
type DiagKind int

const (
	// DiagDeref marks a load/store whose pointer may be dereferenced in
	// the wrong address space (conditions 1–3 of §4.3).
	DiagDeref DiagKind = iota
	// DiagStore marks a store that may place a pointer in an illegal
	// location (the store rules of §4.3).
	DiagStore
)

func (k DiagKind) String() string {
	if k == DiagDeref {
		return "unsafe-deref"
	}
	return "unsafe-store"
}

// Diagnostic points at an instruction the analysis could not prove safe.
type Diagnostic struct {
	Fn    string
	Block string
	Index int
	Kind  DiagKind
	Instr *Instr
	Why   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s/%s#%d: %s: %q (%s)", d.Fn, d.Block, d.Index, d.Kind, d.Instr, d.Why)
}

// derefUnsafe evaluates §4.3's three deref conditions for pointer value p
// at an instruction with VASin = in. A pointer provably confined to the
// common region is always safe to dereference.
func (a *Analysis) derefUnsafe(fn, p string, in *VSet) (bool, string) {
	pv := a.validOf(fn, p)
	if pv.HasCommon() && pv.IDCount() == 0 && !pv.HasUnknown() {
		return false, ""
	}
	if pv.Empty() || pv.HasUnknown() || pv.IDCount() > 1 || (pv.HasCommon() && pv.IDCount() > 0) {
		return true, fmt.Sprintf("VASvalid(%s)=%s is ambiguous", p, pv)
	}
	if in.HasUnknown() || in.IDCount() > 1 {
		return true, fmt.Sprintf("VASin=%s is ambiguous", in)
	}
	if !pv.sameIDs(in) {
		return true, fmt.Sprintf("VASvalid(%s)=%s differs from VASin=%s", p, pv, in)
	}
	return false, ""
}

// storeUnsafe evaluates §4.3's pointer-store conditions for `store p, v`.
func (a *Analysis) storeUnsafe(fn, p, v string) (bool, string) {
	vv := a.validOf(fn, v)
	if vv.Empty() {
		return false, "" // not a pointer
	}
	pv := a.validOf(fn, p)
	if pv.HasCommon() && pv.IDCount() == 0 && !pv.HasUnknown() {
		return false, "" // store to the common region
	}
	if pv.IDCount() == 1 && !pv.HasCommon() && !pv.HasUnknown() && pv.sameIDs(vv) &&
		!vv.HasCommon() && !vv.HasUnknown() {
		return false, "" // pointer stored within its own region
	}
	return true, fmt.Sprintf("VASvalid(%s)=%s stored into VASvalid(%s)=%s", v, vv, p, pv)
}

// Diagnostics returns every instruction that needs a runtime check,
// in program order.
func (a *Analysis) Diagnostics() []Diagnostic {
	var out []Diagnostic
	var names []string
	for n := range a.prog.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fn := range names {
		f := a.prog.Funcs[fn]
		for _, blk := range f.Blocks {
			for idx, ins := range blk.Instrs {
				in := a.InAt(fn, blk.Name, idx)
				switch ins.Op {
				case OpLoad:
					if bad, why := a.derefUnsafe(fn, ins.Args[0], in); bad {
						out = append(out, Diagnostic{fn, blk.Name, idx, DiagDeref, ins, why})
					}
				case OpStore:
					if bad, why := a.derefUnsafe(fn, ins.Args[0], in); bad {
						out = append(out, Diagnostic{fn, blk.Name, idx, DiagDeref, ins, why})
					}
					if bad, why := a.storeUnsafe(fn, ins.Args[0], ins.Args[1]); bad {
						out = append(out, Diagnostic{fn, blk.Name, idx, DiagStore, ins, why})
					}
				}
			}
		}
	}
	return out
}
