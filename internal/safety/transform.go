package safety

// Instrument runs the analysis and returns a copy of the program with
// runtime checks inserted exactly before the instructions the analysis
// could not prove safe — checkderef before ambiguous dereferences,
// checkstore before possibly-illegal pointer stores (§4.3). The returned
// diagnostics describe every inserted check.
//
// Provably safe instructions receive no instrumentation, which is the
// paper's point: "because checking every pointer dereference is too
// conservative, we present a compiler analysis to prove when dereferences
// are safe ... and only insert checks where safety cannot be proven".
func Instrument(p *Program) (*Program, []Diagnostic) {
	a := Analyze(p)
	diags := a.Diagnostics()
	out := cloneProgram(p)

	// Group diagnostics by (fn, block, index); a store may need both a
	// deref check and a store check.
	type site struct {
		fn, blk string
		idx     int
	}
	bysite := map[site][]Diagnostic{}
	for _, d := range diags {
		k := site{d.Fn, d.Block, d.Index}
		bysite[k] = append(bysite[k], d)
	}
	for _, f := range out.Funcs {
		for _, blk := range f.Blocks {
			var instrs []*Instr
			for idx, ins := range blk.Instrs {
				for _, d := range bysite[site{f.Name, blk.Name, idx}] {
					switch d.Kind {
					case DiagDeref:
						instrs = append(instrs, &Instr{Op: OpCheckDeref, Args: []string{ins.Args[0]}, VAS: NoVAS})
					case DiagStore:
						instrs = append(instrs, &Instr{Op: OpCheckStore, Args: []string{ins.Args[0], ins.Args[1]}, VAS: NoVAS})
					}
				}
				instrs = append(instrs, ins)
			}
			blk.Instrs = instrs
		}
	}
	return out, diags
}

func cloneProgram(p *Program) *Program {
	out := &Program{Funcs: map[string]*Func{}, Entry: p.Entry}
	for name, f := range p.Funcs {
		nf := &Func{Name: f.Name, Params: append([]string(nil), f.Params...)}
		for _, blk := range f.Blocks {
			nb := &Block{Name: blk.Name}
			for _, ins := range blk.Instrs {
				c := *ins
				c.Args = append([]string(nil), ins.Args...)
				c.Blocks = append([]string(nil), ins.Blocks...)
				nb.Instrs = append(nb.Instrs, &c)
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		out.Funcs[name] = nf
	}
	return out
}
