package safety

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOptimizeRemovesBackToBackChecks(t *testing.T) {
	// Two flagged loads of the same pointer with no VAS change between
	// them need only one check.
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %x = load %p
  %y = load %p
  ret
}`)
	inst, diags := Instrument(p)
	if len(diags) != 2 {
		t.Fatalf("diags = %d", len(diags))
	}
	opt, removed := OptimizeChecks(inst)
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if got := strings.Count(opt.String(), "checkderef"); got != 1 {
		t.Errorf("checks remaining = %d:\n%s", got, opt)
	}
	// Still traps on the (first) unsafe load.
	if _, err := NewInterp(opt, ModeChecked).Run(); !errors.Is(err, ErrCheckFailed) {
		t.Errorf("optimized program no longer traps: %v", err)
	}
}

func TestOptimizeKeepsChecksAcrossSwitch(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %x = load %p
  switch 1
  %y = load %p
  ret
}`)
	inst, _ := Instrument(p)
	opt, removed := OptimizeChecks(inst)
	if removed != 0 {
		t.Errorf("removed %d checks across a switch", removed)
	}
	if got := strings.Count(opt.String(), "checkderef"); got < 1 {
		t.Errorf("checks remaining = %d", got)
	}
}

func TestOptimizeKeepsChecksAcrossCall(t *testing.T) {
	p := MustParse(`
func jump() {
entry:
  switch 2
  ret
}
func main() {
entry:
  %c = const 0
  condbr %c, a, b
a:
  br b
b:
  switch 1
  %p = malloc
  call jump()
  %x = load %p
  call jump()
  %y = load %p
  ret
}`)
	inst, _ := Instrument(p)
	opt, removed := OptimizeChecks(inst)
	if removed != 0 {
		t.Errorf("removed %d checks across calls", removed)
	}
	_ = opt
}

func TestOptimizeCheckStorePairs(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %q = malloc
  store %q, %p
  store %q, %p
  ret
}`)
	inst, _ := Instrument(p)
	before := strings.Count(inst.String(), "checkstore")
	opt, _ := OptimizeChecks(inst)
	after := strings.Count(opt.String(), "checkstore")
	if before != 2 || after != 1 {
		t.Errorf("checkstores %d -> %d, want 2 -> 1", before, after)
	}
}

// Property: the optimized instrumented program traps exactly when the
// unoptimized one does.
func TestPropertyOptimizationPreservesTrapping(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng)
		inst, _ := Instrument(p)
		opt, _ := OptimizeChecks(inst)
		_, errA := NewInterp(inst, ModeChecked).Run()
		_, errB := NewInterp(opt, ModeChecked).Run()
		return errors.Is(errA, ErrCheckFailed) == errors.Is(errB, ErrCheckFailed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: optimization only ever removes check instructions.
func TestPropertyOptimizationRemovesOnlyChecks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng)
		inst, _ := Instrument(p)
		opt, removed := OptimizeChecks(inst)
		count := func(pr *Program, op Op) int {
			n := 0
			for _, f := range pr.Funcs {
				for _, b := range f.Blocks {
					for _, i := range b.Instrs {
						if i.Op == op {
							n++
						}
					}
				}
			}
			return n
		}
		checksGone := (count(inst, OpCheckDeref) + count(inst, OpCheckStore)) -
			(count(opt, OpCheckDeref) + count(opt, OpCheckStore))
		if checksGone != removed {
			return false
		}
		for _, op := range []Op{OpLoad, OpStore, OpSwitch, OpMalloc, OpCall} {
			if count(inst, op) != count(opt, op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
