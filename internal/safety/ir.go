// Package safety implements the compiler support of paper §4.3: a static
// analysis over an SSA intermediate representation that computes, for every
// pointer, the set of address spaces it may be valid in (VASvalid) and, for
// every instruction, the set of address spaces that may be active when it
// executes (VASin/VASout); a transformation that inserts runtime checks
// exactly where safety cannot be proven; and an interpreter with tagged
// pointers that executes (instrumented) programs and serves as the dynamic
// oracle in tests.
//
// The instruction set is Figure 5's: switch, vcast, alloca, global, malloc,
// copy/arith, phi, load, store, call, ret — plus the control-flow and
// constant plumbing needed to write real programs, and the check
// pseudo-instructions the transformation inserts.
package safety

import (
	"fmt"
	"strings"
)

// Op is an IR operation.
type Op int

// The IR operations (Figure 5, plus control flow, constants and checks).
const (
	OpSwitch     Op = iota // switch <vas> | switch %v
	OpVCast                // %x = vcast %y, <vas>
	OpAlloca               // %x = alloca
	OpGlobal               // %x = global <name>
	OpMalloc               // %x = malloc
	OpCopy                 // %x = copy %y
	OpArith                // %x = arith %a, %b
	OpPhi                  // %x = phi [%a, blk], [%b, blk]
	OpLoad                 // %x = load %p
	OpStore                // store %p, %v   (*p = v)
	OpCall                 // %x = call fn(%a, ...) | call fn(...)
	OpRet                  // ret [%x]
	OpBr                   // br blk
	OpCondBr               // condbr %c, blk1, blk2
	OpConst                // %x = const <int>
	OpCheckDeref           // checkderef %p        (inserted)
	OpCheckStore           // checkstore %p, %v    (inserted)
)

var opNames = map[Op]string{
	OpSwitch: "switch", OpVCast: "vcast", OpAlloca: "alloca", OpGlobal: "global",
	OpMalloc: "malloc", OpCopy: "copy", OpArith: "arith", OpPhi: "phi",
	OpLoad: "load", OpStore: "store", OpCall: "call", OpRet: "ret",
	OpBr: "br", OpCondBr: "condbr", OpConst: "const",
	OpCheckDeref: "checkderef", OpCheckStore: "checkstore",
}

func (o Op) String() string { return opNames[o] }

// NoVAS marks the VAS field of instructions whose switch/vcast target is a
// dynamic value rather than a constant.
const NoVAS = -1

// Instr is one SSA instruction.
type Instr struct {
	Op     Op
	Dst    string   // defined value ("" if none)
	Args   []string // operand value names
	VAS    int      // constant VAS id for switch/vcast (NoVAS if dynamic)
	Const  int64    // literal for OpConst
	Callee string   // for OpCall
	Global string   // symbol for OpGlobal
	Blocks []string // br/condbr targets; phi's incoming blocks (aligned to Args)
}

func (i *Instr) String() string {
	var b strings.Builder
	if i.Dst != "" {
		fmt.Fprintf(&b, "%s = ", i.Dst)
	}
	switch i.Op {
	case OpSwitch:
		if i.VAS != NoVAS {
			fmt.Fprintf(&b, "switch %d", i.VAS)
		} else {
			fmt.Fprintf(&b, "switch %s", i.Args[0])
		}
	case OpVCast:
		fmt.Fprintf(&b, "vcast %s, %d", i.Args[0], i.VAS)
	case OpAlloca:
		b.WriteString("alloca")
	case OpGlobal:
		fmt.Fprintf(&b, "global %s", i.Global)
	case OpMalloc:
		b.WriteString("malloc")
	case OpCopy:
		fmt.Fprintf(&b, "copy %s", i.Args[0])
	case OpArith:
		fmt.Fprintf(&b, "arith %s, %s", i.Args[0], i.Args[1])
	case OpPhi:
		b.WriteString("phi ")
		for k := range i.Args {
			if k > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[%s, %s]", i.Args[k], i.Blocks[k])
		}
	case OpLoad:
		fmt.Fprintf(&b, "load %s", i.Args[0])
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", i.Args[0], i.Args[1])
	case OpCall:
		fmt.Fprintf(&b, "call %s(%s)", i.Callee, strings.Join(i.Args, ", "))
	case OpRet:
		b.WriteString("ret")
		if len(i.Args) > 0 {
			fmt.Fprintf(&b, " %s", i.Args[0])
		}
	case OpBr:
		fmt.Fprintf(&b, "br %s", i.Blocks[0])
	case OpCondBr:
		fmt.Fprintf(&b, "condbr %s, %s, %s", i.Args[0], i.Blocks[0], i.Blocks[1])
	case OpConst:
		fmt.Fprintf(&b, "const %d", i.Const)
	case OpCheckDeref:
		fmt.Fprintf(&b, "checkderef %s", i.Args[0])
	case OpCheckStore:
		fmt.Fprintf(&b, "checkstore %s, %s", i.Args[0], i.Args[1])
	}
	return b.String()
}

// Terminator reports whether the instruction ends a block.
func (i *Instr) Terminator() bool {
	return i.Op == OpRet || i.Op == OpBr || i.Op == OpCondBr
}

// Block is a basic block: a label and a terminated instruction list.
type Block struct {
	Name   string
	Instrs []*Instr
}

// Func is an SSA function.
type Func struct {
	Name   string
	Params []string
	Blocks []*Block
}

// Block returns the named block.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Program is a set of functions; execution starts at Entry (default "main").
type Program struct {
	Funcs map[string]*Func
	Entry string
}

// EntryFunc returns the program's entry function.
func (p *Program) EntryFunc() *Func { return p.Funcs[p.Entry] }

func (p *Program) String() string {
	var b strings.Builder
	// Stable order: entry first, then the rest sorted by name.
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		if n != p.Entry {
			names = append(names, n)
		}
	}
	sortStrings(names)
	if p.Funcs[p.Entry] != nil {
		names = append([]string{p.Entry}, names...)
	}
	for _, n := range names {
		f := p.Funcs[n]
		fmt.Fprintf(&b, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for _, ins := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", ins)
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Validate performs structural checks: blocks terminated exactly once,
// SSA single definition, uses of defined values, and valid branch targets.
func (p *Program) Validate() error {
	if p.EntryFunc() == nil {
		return fmt.Errorf("safety: no entry function %q", p.Entry)
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("safety: function %s has no blocks", f.Name)
		}
		defined := map[string]bool{}
		for _, prm := range f.Params {
			if defined[prm] {
				return fmt.Errorf("safety: %s: duplicate param %s", f.Name, prm)
			}
			defined[prm] = true
		}
		for _, blk := range f.Blocks {
			if len(blk.Instrs) == 0 {
				return fmt.Errorf("safety: %s/%s: empty block", f.Name, blk.Name)
			}
			for k, ins := range blk.Instrs {
				if ins.Terminator() != (k == len(blk.Instrs)-1) {
					return fmt.Errorf("safety: %s/%s: terminator placement at %d", f.Name, blk.Name, k)
				}
				if ins.Dst != "" {
					if defined[ins.Dst] {
						return fmt.Errorf("safety: %s: value %s defined twice", f.Name, ins.Dst)
					}
					defined[ins.Dst] = true
				}
				for _, tgt := range ins.Blocks {
					if (ins.Op == OpBr || ins.Op == OpCondBr) && f.Block(tgt) == nil {
						return fmt.Errorf("safety: %s/%s: branch to unknown block %s", f.Name, blk.Name, tgt)
					}
				}
				if ins.Op == OpCall {
					if _, ok := p.Funcs[ins.Callee]; !ok {
						return fmt.Errorf("safety: %s: call to unknown function %s", f.Name, ins.Callee)
					}
				}
			}
		}
		// Every used value must be defined somewhere in the function
		// (dominance is not checked; phi makes a full check involved).
		for _, blk := range f.Blocks {
			for _, ins := range blk.Instrs {
				for _, a := range ins.Args {
					if !defined[a] {
						return fmt.Errorf("safety: %s: use of undefined value %s in %q", f.Name, a, ins)
					}
				}
			}
		}
	}
	return nil
}
