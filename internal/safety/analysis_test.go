package safety

import (
	"strings"
	"testing"
)

// diagsOf analyzes src and returns diagnostics as "kind@block#idx" strings.
func diagsOf(t *testing.T, src string) []string {
	t.Helper()
	p := MustParse(src)
	a := Analyze(p)
	var out []string
	for _, d := range a.Diagnostics() {
		out = append(out, d.Kind.String()+"@"+d.Block+"#"+itoa(d.Index))
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSafeSameVASDeref(t *testing.T) {
	d := diagsOf(t, `
func main() {
entry:
  switch 1
  %p = malloc
  %x = load %p
  store %p, %x
  ret
}`)
	if len(d) != 0 {
		t.Errorf("safe program flagged: %v", d)
	}
}

func TestDerefAfterSwitchFlagged(t *testing.T) {
	d := diagsOf(t, `
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %x = load %p
  ret
}`)
	if len(d) != 1 || d[0] != "unsafe-deref@entry#3" {
		t.Errorf("diags = %v, want the cross-VAS load flagged", d)
	}
}

func TestCommonRegionAlwaysSafe(t *testing.T) {
	// alloca and global derefs are safe in any VAS (§3.3 rule 2).
	d := diagsOf(t, `
func main() {
entry:
  %g = global counter
  %s = alloca
  switch 1
  %a = load %g
  switch 2
  %b = load %s
  store %g, %b
  ret
}`)
	// store %g, %b is a store of an unknown-provenance value (loaded from
	// the common region via %s... actually %b = load %s yields unknown) to
	// the common region: store-to-common is safe, deref of %g is safe.
	if len(d) != 0 {
		t.Errorf("common-region program flagged: %v", d)
	}
}

func TestVCastOverridesProvenance(t *testing.T) {
	d := diagsOf(t, `
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %q = vcast %p, 2
  %x = load %q
  ret
}`)
	if len(d) != 0 {
		t.Errorf("vcast-corrected program flagged: %v", d)
	}
}

func TestAmbiguousProvenancePhi(t *testing.T) {
	// The pointer may come from VAS 1 or VAS 2 depending on the branch:
	// condition 1 (|VASvalid| > 1).
	d := diagsOf(t, `
func main() {
entry:
  %c = const 1
  condbr %c, a, b
a:
  switch 1
  %p = malloc
  br join
b:
  switch 2
  %q = malloc
  br join
join:
  %r = phi [%p, a], [%q, b]
  %x = load %r
  ret
}`)
	found := false
	for _, s := range d {
		if strings.HasPrefix(s, "unsafe-deref@join") {
			found = true
		}
	}
	if !found {
		t.Errorf("ambiguous phi deref not flagged: %v", d)
	}
}

func TestAmbiguousVASinFlagged(t *testing.T) {
	// Condition 2: the active VAS at the load is ambiguous.
	d := diagsOf(t, `
func main() {
entry:
  switch 1
  %p = malloc
  %c = const 0
  condbr %c, a, join
a:
  switch 2
  br join
join:
  %x = load %p
  ret
}`)
	if len(d) == 0 {
		t.Error("load under ambiguous VASin not flagged")
	}
}

func TestStoreCrossVASPointerFlagged(t *testing.T) {
	d := diagsOf(t, `
func main() {
entry:
  switch 1
  %p = malloc
  switch 2
  %q = malloc
  store %q, %p
  ret
}`)
	// Deref of %q is fine ({2} = {2}); storing %p ({1}) into it is not.
	want := "unsafe-store@entry#4"
	if len(d) != 1 || d[0] != want {
		t.Errorf("diags = %v, want [%s]", d, want)
	}
}

func TestStorePointerToCommonSafe(t *testing.T) {
	// "A VAS should not store a pointer that points to another VAS,
	// except in the common region."
	d := diagsOf(t, `
func main() {
entry:
  %g = global head
  switch 1
  %p = malloc
  store %g, %p
  ret
}`)
	if len(d) != 0 {
		t.Errorf("store to common region flagged: %v", d)
	}
}

func TestStoreCommonPointerToVASFlagged(t *testing.T) {
	// "Pointers to the common region should only be stored in the common
	// region."
	d := diagsOf(t, `
func main() {
entry:
  %g = global head
  switch 1
  %p = malloc
  store %p, %g
  ret
}`)
	if len(d) != 1 || d[0] != "unsafe-store@entry#3" {
		t.Errorf("diags = %v", d)
	}
}

func TestLoadFromCommonIsUnknown(t *testing.T) {
	// A pointer loaded from the common region has the safety of whatever
	// was stored — statically unknown, so its deref needs a check.
	d := diagsOf(t, `
func main() {
entry:
  %g = global head
  switch 1
  %p = malloc
  store %g, %p
  %q = load %g
  %x = load %q
  ret
}`)
	if len(d) != 1 || d[0] != "unsafe-deref@entry#5" {
		t.Errorf("diags = %v", d)
	}
}

func TestDynamicSwitchMakesEverythingUnknown(t *testing.T) {
	d := diagsOf(t, `
func main() {
entry:
  %v = const 3
  switch %v
  %p = malloc
  %x = load %p
  ret
}`)
	if len(d) == 0 {
		t.Error("deref after dynamic switch not flagged")
	}
}

func TestInterproceduralSwitchPropagates(t *testing.T) {
	// The callee switches VASes; the caller's post-call deref of a
	// pre-call pointer must be flagged.
	d := diagsOf(t, `
func jump() {
entry:
  switch 2
  ret
}
func main() {
entry:
  switch 1
  %p = malloc
  call jump()
  %x = load %p
  ret
}`)
	found := false
	for _, s := range d {
		if strings.HasPrefix(s, "unsafe-deref@entry#3") {
			found = true
		}
	}
	if !found {
		t.Errorf("post-call deref not flagged: %v", d)
	}
}

func TestInterproceduralPointerArgument(t *testing.T) {
	// A pointer passed into a function keeps its provenance; the callee
	// dereferencing it in the right VAS is safe.
	d := diagsOf(t, `
func use(%arg) {
entry:
  %x = load %arg
  ret
}
func main() {
entry:
  switch 1
  %p = malloc
  call use(%p)
  ret
}`)
	if len(d) != 0 {
		t.Errorf("matching interprocedural deref flagged: %v", d)
	}
}

func TestInterproceduralReturnValue(t *testing.T) {
	d := diagsOf(t, `
func mk() {
entry:
  %p = malloc
  ret %p
}
func main() {
entry:
  switch 1
  %q = call mk()
  switch 2
  %x = load %q
  ret
}`)
	found := false
	for _, s := range d {
		if strings.HasPrefix(s, "unsafe-deref@entry#3") {
			found = true
		}
	}
	if !found {
		t.Errorf("cross-VAS deref of returned pointer not flagged: %v", d)
	}
}

func TestFigure5MallocTakesVASin(t *testing.T) {
	p := MustParse(`
func main() {
entry:
  switch 7
  %p = malloc
  ret
}`)
	a := Analyze(p)
	v := a.ValidOf("main", "%p")
	if !v.Has(7) || v.IDCount() != 1 || v.HasCommon() || v.HasUnknown() {
		t.Errorf("VASvalid(malloc after switch 7) = %v", v)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	src := `func helper(%a) {
entry:
  %x = load %a
  ret %x
}
func main() {
entry:
  switch 1
  %p = malloc
  %c = const 5
  %q = arith %p, %c
  condbr %c, a, b
a:
  %r1 = copy %q
  br join
b:
  %r2 = vcast %q, 2
  br join
join:
  %r = phi [%r1, a], [%r2, b]
  %v = call helper(%r)
  store %p, %v
  ret
}`
	p1 := MustParse(src)
	p2 := MustParse(p1.String())
	if p1.String() != p2.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", p1, p2)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []string{
		"func main() {\nentry:\n  %x = copy %y\n  ret\n}",              // undefined use
		"func main() {\nentry:\n  ret\n  %x = malloc\n}",               // instr after terminator
		"func main() {\nentry:\n  br nowhere\n}",                       // bad target
		"func main() {\nentry:\n  call missing()\n  ret\n}",            // unknown callee
		"func main() {\nentry:\n  %x = malloc\n  %x = malloc\n ret\n}", // double def
		"func other() {\nentry:\n  ret\n}",                             // no main
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
