package safety

// OptimizeChecks removes provably redundant runtime checks from an
// instrumented program — one of the optimizations §4.3 defers to future
// work ("there are situations where our conservative algorithm will insert
// unnecessary safety checks which a more involved analysis would elide").
//
// A checkderef on value p verifies a predicate over (provenance of p,
// current VAS). The provenance of an SSA value never changes, and the
// current VAS changes only at switch instructions or calls (which may
// switch internally). So within a basic block, a check is redundant if an
// identical check already executed since the last switch/call: if the
// earlier check passed, the later one must pass too; if it trapped,
// execution never reached the later one. The same argument covers
// checkstore over the (pointer, value) pair.
func OptimizeChecks(p *Program) (*Program, int) {
	out := cloneProgram(p)
	removed := 0
	for _, f := range out.Funcs {
		for _, blk := range f.Blocks {
			derefOK := map[string]bool{}
			storeOK := map[[2]string]bool{}
			var kept []*Instr
			for _, ins := range blk.Instrs {
				switch ins.Op {
				case OpSwitch, OpCall:
					// The active VAS may have changed: every cached check
					// result is stale.
					derefOK = map[string]bool{}
					storeOK = map[[2]string]bool{}
				case OpCheckDeref:
					if derefOK[ins.Args[0]] {
						removed++
						continue
					}
					derefOK[ins.Args[0]] = true
				case OpCheckStore:
					key := [2]string{ins.Args[0], ins.Args[1]}
					if storeOK[key] {
						removed++
						continue
					}
					storeOK[key] = true
				}
				kept = append(kept, ins)
			}
			blk.Instrs = kept
		}
	}
	return out, removed
}

// InstrumentOptimized is Instrument followed by OptimizeChecks.
func InstrumentOptimized(p *Program) (*Program, []Diagnostic, int) {
	inst, diags := Instrument(p)
	opt, removed := OptimizeChecks(inst)
	return opt, diags, removed
}
