package experiments

import (
	"fmt"
	"time"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/gups"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/pt"
	"spacejmp/internal/vm"
)

// Ablations for the design choices DESIGN.md calls out. Each returns
// labeled measurements the harness prints.

// AblationRow is one labeled measurement.
type AblationRow struct {
	Label string
	Value float64
	Unit  string
}

// AblationTagPolicy compares GUPS throughput never-tagged vs always-tagged
// (the §4.4 trade-off: tags retain translations but cost more per CR3
// write and reduce effective TLB capacity when many spaces share entries).
func AblationTagPolicy(cfg gups.Config) ([]AblationRow, error) {
	var out []AblationRow
	for _, tags := range []bool{false, true} {
		c := cfg
		c.UseTags = tags
		r, err := gups.RunSpaceJMP(kernel.New(hw.NewMachine(gupsMachine(c.Windows))), c)
		if err != nil {
			return nil, err
		}
		label := "tags off"
		if tags {
			label = "tags on"
		}
		out = append(out,
			AblationRow{"GUPS " + label, r.MUPS, "MUPS"},
			AblationRow{"TLB misses " + label, float64(r.TLBMisses), "misses"},
		)
	}
	return out, nil
}

// AblationSegCache compares VAS attach cost with per-page mappings versus
// cached translation subtrees (§4.1), as a function of segment size.
func AblationSegCache(sizePows []int) ([]AblationRow, error) {
	var out []AblationRow
	for _, p := range sizePows {
		size := uint64(1) << p
		for _, cached := range []bool{false, true} {
			m := hw.NewMachine(hw.M2())
			sys := kernel.New(m)
			proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
			if err != nil {
				return nil, err
			}
			th, err := proc.NewThread()
			if err != nil {
				return nil, err
			}
			vid, err := th.VASCreate("abl.v", 0o600)
			if err != nil {
				return nil, err
			}
			sid, err := th.SegAlloc("abl.s", core.GlobalBase, size, arch.PermRW)
			if err != nil {
				return nil, err
			}
			if cached {
				if err := th.SegCtl(sid, core.CacheTranslations()); err != nil {
					return nil, err
				}
			}
			if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
				return nil, err
			}
			// Measure attach + first full touch (faults populate the
			// uncached case; the cached case has no faults at all).
			before := th.Core.Cycles()
			h, err := th.VASAttach(vid)
			if err != nil {
				return nil, err
			}
			if err := th.VASSwitch(h); err != nil {
				return nil, err
			}
			for off := uint64(0); off < size; off += arch.PageSize {
				if _, err := th.Load64(core.GlobalBase + arch.VirtAddr(off)); err != nil {
					return nil, err
				}
			}
			cycles := th.Core.Cycles() - before
			label := fmt.Sprintf("attach+touch 2^%d", p)
			if cached {
				label += " cached"
			} else {
				label += " per-page"
			}
			out = append(out, AblationRow{label, float64(cycles), "cycles"})
		}
	}
	return out, nil
}

// AblationLockGranularity compares per-segment locking against one global
// lock across all segments, for a VAS holding several read-only segments
// read by many concurrent clients. With per-segment locks every reader
// proceeds; a single VAS-wide mutex would serialize even readers when any
// writer exists — measured here as the exclusive-path cost difference.
func AblationLockGranularity() ([]AblationRow, error) {
	// Per-segment reader/writer locks: two VASes over disjoint segments
	// can be written concurrently by two threads with zero blocking;
	// a global lock would serialize the writes. We measure total cycles
	// for both threads to complete N switch+write rounds under the two
	// regimes (the global regime simulated by mapping both segments into
	// one VAS so one write lock spans them).
	const rounds = 200
	run := func(shared bool) (uint64, int64, error) {
		m := hw.NewMachine(hw.M2())
		sys := kernel.New(m)
		total := uint64(0)
		var segIDs []core.SegID
		segBase := func(i int) arch.VirtAddr {
			return core.GlobalBase + arch.VirtAddr(uint64(i)*arch.LevelCoverage(3))
		}
		var threads []*core.Thread
		var handles []core.Handle
		for i := 0; i < 2; i++ {
			proc, err := sys.NewProcess(core.Creds{UID: uint32(i + 1), GID: 1})
			if err != nil {
				return 0, 0, err
			}
			th, err := proc.NewThread()
			if err != nil {
				return 0, 0, err
			}
			threads = append(threads, th)
		}
		if shared {
			// One VAS holding both segments: the write lock set spans both.
			vid, err := threads[0].VASCreate("abl.shared", 0o666)
			if err != nil {
				return 0, 0, err
			}
			for i := 0; i < 2; i++ {
				sid, err := threads[0].SegAlloc(fmt.Sprintf("abl.seg%d", i), segBase(i), 1<<20, arch.PermRW)
				if err != nil {
					return 0, 0, err
				}
				segIDs = append(segIDs, sid)
				if err := threads[0].SegAttachVAS(vid, sid, arch.PermRW); err != nil {
					return 0, 0, err
				}
			}
			for i := 0; i < 2; i++ {
				h, err := threads[i].VASAttach(vid)
				if err != nil {
					return 0, 0, err
				}
				handles = append(handles, h)
			}
		} else {
			for i := 0; i < 2; i++ {
				vid, err := threads[i].VASCreate(fmt.Sprintf("abl.v%d", i), 0o666)
				if err != nil {
					return 0, 0, err
				}
				sid, err := threads[i].SegAlloc(fmt.Sprintf("abl.seg%d", i), segBase(i), 1<<20, arch.PermRW)
				if err != nil {
					return 0, 0, err
				}
				segIDs = append(segIDs, sid)
				if err := threads[i].SegAttachVAS(vid, sid, arch.PermRW); err != nil {
					return 0, 0, err
				}
				h, err := threads[i].VASAttach(vid)
				if err != nil {
					return 0, 0, err
				}
				handles = append(handles, h)
			}
		}
		// Orchestrate a guaranteed overlap each round: thread 0 switches in
		// and holds its lock set while thread 1 attempts its own switch.
		// With disjoint segments thread 1 proceeds immediately; with the
		// shared lock set it must block until thread 0 leaves.
		done := make(chan uint64, 2)
		holderIn := make(chan struct{})
		release := make(chan struct{})
		roundDone := make(chan struct{})
		go func() {
			th, h := threads[0], handles[0]
			before := th.Core.Cycles()
			for r := 0; r < rounds; r++ {
				if err := th.VASSwitch(h); err != nil {
					done <- 0
					return
				}
				if err := th.Store64(segBase(0), uint64(r)); err != nil {
					done <- 0
					return
				}
				holderIn <- struct{}{}
				<-release
				if err := th.VASSwitch(core.PrimaryHandle); err != nil {
					done <- 0
					return
				}
				// Do not start the next round (re-acquiring the lock set)
				// until the peer finished this one, or we could snatch the
				// lock back before its pending acquisition is served.
				<-roundDone
			}
			done <- th.Core.Cycles() - before
		}()
		go func() {
			th, h := threads[1], handles[1]
			before := th.Core.Cycles()
			for r := 0; r < rounds; r++ {
				<-holderIn
				// Let the holder go only after this thread's switch attempt
				// is in flight; a real-time grace period bounds the skew.
				go func() {
					time.Sleep(200 * time.Microsecond)
					release <- struct{}{}
				}()
				if err := th.VASSwitch(h); err != nil { // contends iff shared
					done <- 0
					return
				}
				if err := th.Store64(segBase(1), uint64(r)); err != nil {
					done <- 0
					return
				}
				if err := th.VASSwitch(core.PrimaryHandle); err != nil {
					done <- 0
					return
				}
				roundDone <- struct{}{}
			}
			done <- th.Core.Cycles() - before
		}()
		total = <-done + <-done
		var contentions int64
		for _, sid := range segIDs {
			seg, err := sys.SegByID(sid)
			if err != nil {
				return 0, 0, err
			}
			contentions += seg.LockContentions()
		}
		return total, contentions, nil
	}
	perSegCycles, perSegCont, err := run(false)
	if err != nil {
		return nil, err
	}
	globalCycles, globalCont, err := run(true)
	if err != nil {
		return nil, err
	}
	// Blocked threads consume no simulated cycles, so the work cycles are
	// near-identical; the serialization shows up as blocked acquisitions.
	return []AblationRow{
		{"2 writers, disjoint segments: work", float64(perSegCycles), "cycles"},
		{"2 writers, disjoint segments: blocked lock acquisitions", float64(perSegCont), "count"},
		{"2 writers, one shared lock set: work", float64(globalCycles), "cycles"},
		{"2 writers, one shared lock set: blocked lock acquisitions", float64(globalCont), "count"},
	}, nil
}

// AblationPopulate compares eager versus fault-driven population of a
// fresh mapping followed by a full sequential touch.
func AblationPopulate(sizePow int) ([]AblationRow, error) {
	size := uint64(1) << sizePow
	run := func(flags vm.MapFlags, label string) (AblationRow, error) {
		m := hw.NewMachine(hw.M2())
		space, err := vm.NewSpace(m.PM)
		if err != nil {
			return AblationRow{}, err
		}
		c := m.Cores[0]
		c.LoadCR3(space.Table(), arch.ASIDFlush)
		c.OnFault = space.Handler()
		before := c.Cycles()
		ptBefore := space.Table().Stats()
		if _, err := space.MapAnon(core.GlobalBase, size, arch.PermRW, vm.MapFixed|flags); err != nil {
			return AblationRow{}, err
		}
		c.ChargePT(hw.DeltaPT(ptBefore, space.Table().Stats()))
		for off := uint64(0); off < size; off += arch.PageSize {
			if _, err := c.Load64(core.GlobalBase + arch.VirtAddr(off)); err != nil {
				return AblationRow{}, err
			}
		}
		// Charge fault-driven PT work too.
		c.ChargePT(hw.DeltaPT(ptBefore, space.Table().Stats()))
		return AblationRow{label, float64(c.Cycles() - before), "cycles"}, nil
	}
	eager, err := run(vm.MapPopulate, fmt.Sprintf("map+touch 2^%d eager", sizePow))
	if err != nil {
		return nil, err
	}
	lazy, err := run(0, fmt.Sprintf("map+touch 2^%d fault-driven", sizePow))
	if err != nil {
		return nil, err
	}
	return []AblationRow{eager, lazy}, nil
}

// AblationHugeGUPS runs the SpaceJMP GUPS design with 4 KiB versus 2 MiB
// window segments end to end through the public API.
func AblationHugeGUPS(cfg gups.Config) ([]AblationRow, error) {
	var out []AblationRow
	for _, ps := range []uint64{arch.PageSize, arch.HugePageSize} {
		c := cfg
		c.PageSize = ps
		r, err := gups.RunSpaceJMP(kernel.New(hw.NewMachine(gupsMachine(c.Windows))), c)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("GUPS windows on %d KiB pages", ps>>10)
		out = append(out,
			AblationRow{label, r.MUPS, "MUPS"},
			AblationRow{label + " TLB misses", float64(r.TLBMisses), "misses"},
		)
	}
	return out, nil
}

// AblationPageSize compares a random-touch workload over a region backed
// by 4 KiB pages versus 2 MiB pages: fewer walker references per miss and
// vastly larger TLB reach.
func AblationPageSize(regionPow, touches int) ([]AblationRow, error) {
	size := uint64(1) << regionPow
	run := func(pageSize uint64, label string) (AblationRow, error) {
		m := hw.NewMachine(hw.M3())
		table, err := pt.New(m.PM)
		if err != nil {
			return AblationRow{}, err
		}
		order := 0
		if pageSize == arch.HugePageSize {
			order = 9
		}
		for off := uint64(0); off < size; off += pageSize {
			frame, err := m.PM.AllocFrames(order, 0)
			if err != nil {
				return AblationRow{}, err
			}
			if err := table.MapPage(core.GlobalBase+arch.VirtAddr(off), frame, pageSize, arch.PermRW, false); err != nil {
				return AblationRow{}, err
			}
		}
		c := m.Cores[0]
		c.LoadCR3(table, arch.ASIDFlush)
		rng := newDeterministicSequence(size)
		before := c.Cycles()
		for i := 0; i < touches; i++ {
			if _, err := c.Load64(core.GlobalBase + arch.VirtAddr(rng())); err != nil {
				return AblationRow{}, err
			}
		}
		per := float64(c.Cycles()-before) / float64(touches)
		return AblationRow{label, per, "cycles/touch"}, nil
	}
	small, err := run(arch.PageSize, fmt.Sprintf("random touch 2^%d, 4 KiB pages", regionPow))
	if err != nil {
		return nil, err
	}
	huge, err := run(arch.HugePageSize, fmt.Sprintf("random touch 2^%d, 2 MiB pages", regionPow))
	if err != nil {
		return nil, err
	}
	return []AblationRow{small, huge}, nil
}

// newDeterministicSequence yields 8-byte-aligned offsets within size.
func newDeterministicSequence(size uint64) func() uint64 {
	state := uint64(0x9E3779B97F4A7C15)
	return func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return (state % (size / 8)) * 8
	}
}
