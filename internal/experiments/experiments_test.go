package experiments

import (
	"testing"

	"spacejmp/internal/gups"
)

// The experiment drivers are exercised at reduced scale; EXPERIMENTS.md
// records full-scale results. These tests assert the paper's qualitative
// shapes, not absolute numbers.

func quickGUPS() gups.Config {
	return gups.Config{Windows: 2, WindowSize: 1 << 20, UpdateSet: 16, Visits: 32, Seed: 1}
}

func TestFig1Shape(t *testing.T) {
	pts, err := Fig1(22)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	// Map cost grows with region size; at 2^22 it must be far above 2^15.
	first, last := pts[0], pts[len(pts)-1]
	if last.MapMs < first.MapMs*10 {
		t.Errorf("map cost did not scale: %.4f ms -> %.4f ms", first.MapMs, last.MapMs)
	}
	if last.UnmapMs < first.UnmapMs*10 {
		t.Errorf("unmap cost did not scale: %.4f -> %.4f", first.UnmapMs, last.UnmapMs)
	}
	// Cached attach is O(1): flat across sizes and far below map cost.
	if last.MapCachedMs > first.MapCachedMs*2 {
		t.Errorf("cached map cost not flat: %.6f -> %.6f", first.MapCachedMs, last.MapCachedMs)
	}
	if last.MapCachedMs >= last.MapMs/10 {
		t.Errorf("cached map (%.6f ms) not well below map (%.4f ms)", last.MapCachedMs, last.MapMs)
	}
}

func TestFig1PaperCalibration(t *testing.T) {
	// The paper: constructing page tables for a 1 GiB region with 4 KiB
	// pages takes about 5 ms. Verify our cost model reproduces the order
	// of magnitude (between 2 and 15 ms).
	pts, err := Fig1(30)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[len(pts)-1]
	if p.SizePow != 30 {
		t.Fatalf("last point 2^%d", p.SizePow)
	}
	if p.MapMs < 2 || p.MapMs > 15 {
		t.Errorf("1 GiB map = %.2f ms, paper says ~5 ms", p.MapMs)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 || rows[0].Name != "M1" || rows[2].GHz != 2.30 {
		t.Errorf("table 1 rows = %+v", rows)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][4]uint64{
		// Operation -> {DragonFly, DragonFly tagged, Barrelfish, Barrelfish tagged}
		"CR3 load":    {130, 224, 130, 224},
		"system call": {357, 357, 130, 130},
		"vas_switch":  {1127, 807, 664, 462},
	}
	for _, r := range rows {
		w := want[r.Operation]
		got := [4]uint64{r.DragonFly, r.DragonFlyT, r.Barrelfish, r.BarrelfishT}
		if got != w {
			t.Errorf("%s = %v, Table 2 says %v", r.Operation, got, w)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	pts, err := Fig6([]int{64, 512, 4096}, 400)
	if err != nil {
		t.Fatal(err)
	}
	small, large := pts[0], pts[len(pts)-1]
	// Small working set: tagging retains translations, approaching the
	// no-switch latency and far below the flushing case.
	if small.SwitchTagOn > small.NoSwitch*2 {
		t.Errorf("small set: tagged %.1f not near no-switch %.1f", small.SwitchTagOn, small.NoSwitch)
	}
	if small.SwitchTagOff < small.SwitchTagOn*3 {
		t.Errorf("small set: flush %.1f not far above tagged %.1f", small.SwitchTagOff, small.SwitchTagOn)
	}
	// Beyond TLB capacity the benefit tails off: tagged approaches flush.
	if large.SwitchTagOn < large.SwitchTagOff*0.5 {
		t.Errorf("large set: tagged %.1f still far below flush %.1f; benefit should tail off",
			large.SwitchTagOn, large.SwitchTagOff)
	}
}

func TestFig7Shape(t *testing.T) {
	pts, err := Fig7([]int{4, 64, 4096, 262144})
	if err != nil {
		t.Fatal(err)
	}
	small, big := pts[0], pts[len(pts)-1]
	// Small messages: intra-socket URPC beats SpaceJMP (system call and
	// context switch overheads), per §5.1.
	if small.URPCLocal >= small.SpaceJMP {
		t.Errorf("4B: URPC local (%d) not below SpaceJMP (%d)", small.URPCLocal, small.SpaceJMP)
	}
	// Cross-socket: the interconnect dominates; SpaceJMP wins.
	if small.SpaceJMP >= small.URPCCross {
		t.Errorf("4B: SpaceJMP (%d) not below URPC cross (%d)", small.SpaceJMP, small.URPCCross)
	}
	if big.SpaceJMP >= big.URPCCross {
		t.Errorf("256KiB: SpaceJMP (%d) not below URPC cross (%d)", big.SpaceJMP, big.URPCCross)
	}
	// Latency grows with size in all mechanisms.
	if big.URPCLocal <= small.URPCLocal || big.SpaceJMP <= small.SpaceJMP {
		t.Error("latency did not grow with transfer size")
	}
}

func TestFig8Shape(t *testing.T) {
	pts, err := Fig8([]int{1, 4}, []int{16}, quickGUPS())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	one, four := pts[0], pts[1]
	// One window: all close. Many windows: MAP collapses, SpaceJMP >= MP.
	if four.MAP*2 > one.MAP {
		t.Errorf("MAP did not collapse: %.2f -> %.2f MUPS", one.MAP, four.MAP)
	}
	if four.SpaceJMP < four.MP*0.9 {
		t.Errorf("SpaceJMP (%.2f) below MP (%.2f) at 4 windows", four.SpaceJMP, four.MP)
	}
	if four.SpaceJMP < four.MAP {
		t.Errorf("SpaceJMP (%.2f) below MAP (%.2f) at 4 windows", four.SpaceJMP, four.MAP)
	}
}

func TestFig9Rates(t *testing.T) {
	pts, err := Fig9([]int{2}, []int{16}, quickGUPS())
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.SwitchK <= 0 || p.TLBMissK <= 0 {
		t.Fatalf("rates = %+v", p)
	}
	// TLB misses outnumber switches (each visit misses many times).
	if p.TLBMissK <= p.SwitchK {
		t.Errorf("miss rate %.0fk <= switch rate %.0fk", p.TLBMissK, p.SwitchK)
	}
}

func TestFig10Shapes(t *testing.T) {
	f, err := RunFig10(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	last := len(f.Clients) - 1
	// Headline shapes (details are asserted in internal/redis tests).
	if f.GetJmp[0].RPS < 2.5*f.GetRedis[0].RPS {
		t.Errorf("1-client GET: RedisJMP %.0f not ~4x Redis %.0f", f.GetJmp[0].RPS, f.GetRedis[0].RPS)
	}
	if f.GetJmp[last].RPS <= f.GetRedis6x[last].RPS {
		t.Errorf("full load: RedisJMP %.0f not above Redis6x %.0f", f.GetJmp[last].RPS, f.GetRedis6x[last].RPS)
	}
	if f.GetJmpTags[0].RPS <= f.GetJmp[0].RPS {
		t.Errorf("tags did not improve GET: %.0f vs %.0f", f.GetJmpTags[0].RPS, f.GetJmp[0].RPS)
	}
	if f.SetJmp[0].RPS <= f.SetRedis[0].RPS {
		t.Errorf("1-client SET: RedisJMP %.0f not above Redis %.0f", f.SetJmp[0].RPS, f.SetRedis[0].RPS)
	}
	// Figure 10c: monotone decline as SETs increase.
	for i := 1; i < len(f.MixJmp); i++ {
		if f.MixJmp[i].RPS > f.MixJmp[i-1].RPS {
			t.Errorf("mix not declining at %d%% SETs", f.MixPcts[i])
		}
	}
}

func TestFig11Fig12Shapes(t *testing.T) {
	rows11, err := Fig11(250, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows11 {
		if r.SpaceJMP >= r.SAM || r.SpaceJMP >= r.BAM {
			t.Errorf("%s: SpaceJMP %.4f not below SAM %.4f / BAM %.4f", r.Op, r.SpaceJMP, r.SAM, r.BAM)
		}
	}
	rows12, err := Fig12(250, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows12 {
		if r.SpaceJMP > r.Mmap*1.3 {
			t.Errorf("%s: SpaceJMP %.4f not comparable to mmap %.4f", r.Op, r.SpaceJMP, r.Mmap)
		}
	}
}

func TestAblations(t *testing.T) {
	tag, err := AblationTagPolicy(quickGUPS())
	if err != nil {
		t.Fatal(err)
	}
	if len(tag) != 4 {
		t.Fatalf("tag rows = %d", len(tag))
	}
	if tag[3].Value >= tag[1].Value {
		t.Errorf("tags-on misses (%v) not below tags-off (%v)", tag[3].Value, tag[1].Value)
	}
	segCache, err := AblationSegCache([]int{20, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Cached attach+touch must beat per-page at both sizes.
	if segCache[1].Value >= segCache[0].Value {
		t.Errorf("cached (%v) not below per-page (%v)", segCache[1].Value, segCache[0].Value)
	}
	locks, err := AblationLockGranularity()
	if err != nil {
		t.Fatal(err)
	}
	if len(locks) != 4 {
		t.Fatal("lock rows")
	}
	// Disjoint segments never block; the shared lock set must contend.
	if locks[1].Value != 0 {
		t.Errorf("disjoint-segment writers blocked %v times", locks[1].Value)
	}
	if locks[3].Value == 0 {
		t.Error("shared lock set never contended")
	}
	pop, err := AblationPopulate(22)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 2 || pop[0].Value <= 0 || pop[1].Value <= 0 {
		t.Fatalf("populate rows = %+v", pop)
	}
	pages, err := AblationPageSize(24, 500)
	if err != nil {
		t.Fatal(err)
	}
	if pages[1].Value >= pages[0].Value {
		t.Errorf("2 MiB pages (%v cycles/touch) not below 4 KiB (%v)", pages[1].Value, pages[0].Value)
	}
	huge, err := AblationHugeGUPS(quickGUPS())
	if err != nil {
		t.Fatal(err)
	}
	if len(huge) != 4 {
		t.Fatalf("huge gups rows = %d", len(huge))
	}
	// 2 MiB windows: higher MUPS, fewer misses.
	if huge[2].Value <= huge[0].Value {
		t.Errorf("huge-window GUPS (%v MUPS) not above 4 KiB (%v)", huge[2].Value, huge[0].Value)
	}
	if huge[3].Value >= huge[1].Value {
		t.Errorf("huge-window misses (%v) not below 4 KiB (%v)", huge[3].Value, huge[1].Value)
	}
}
