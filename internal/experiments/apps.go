package experiments

import (
	"spacejmp/internal/gups"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/mem"
	"spacejmp/internal/redis"
	"spacejmp/internal/sam"
	"spacejmp/internal/tlb"
)

// gupsMachine is M3 scaled for simulation: full socket/core/frequency
// configuration, enough simulated DRAM for the windows, and the default
// TLB. Window sizes keep the paper's regime (working set >> TLB reach).
func gupsMachine(windows int) hw.MachineConfig {
	cfg := hw.M3()
	// MP needs one core per window plus the master; M3 has 36.
	if windows+1 > cfg.Sockets*cfg.CoresPerSocket {
		cfg.CoresPerSocket = (windows + 2) / cfg.Sockets
	}
	cfg.TLB = tlb.Config{Sets: 16, Ways: 4} // reach 256 KiB << window
	return cfg
}

// Fig8Point is one x-position of Figure 8: MUPS per design at a window
// count, for one update-set size.
type Fig8Point struct {
	Windows   int
	UpdateSet int
	SpaceJMP  float64
	MP        float64
	MAP       float64
}

// Fig8 sweeps window counts for both update-set sizes (16 and 64).
func Fig8(windowCounts []int, updateSets []int, cfg gups.Config) ([]Fig8Point, error) {
	var out []Fig8Point
	for _, us := range updateSets {
		for _, w := range windowCounts {
			c := cfg
			c.Windows = w
			c.UpdateSet = us
			p := Fig8Point{Windows: w, UpdateSet: us}

			sj, err := gups.RunSpaceJMP(kernel.New(hw.NewMachine(gupsMachine(w))), c)
			if err != nil {
				return nil, err
			}
			p.SpaceJMP = sj.MUPS
			mp, err := gups.RunMP(hw.NewMachine(gupsMachine(w)), c)
			if err != nil {
				return nil, err
			}
			p.MP = mp.MUPS
			mapRes, err := gups.RunMAP(hw.NewMachine(gupsMachine(w)), c)
			if err != nil {
				return nil, err
			}
			p.MAP = mapRes.MUPS
			out = append(out, p)
		}
	}
	return out, nil
}

// Fig9Point is one x-position of Figure 9: VAS-switch and TLB-miss rates
// (1k/sec of simulated time) for the SpaceJMP GUPS run.
type Fig9Point struct {
	Windows   int
	UpdateSet int
	SwitchK   float64 // thousands of switches per second
	TLBMissK  float64 // thousands of TLB misses per second
}

// Fig9 derives the rates from SpaceJMP GUPS runs (TLB tagging disabled, as
// in the paper's figure).
func Fig9(windowCounts []int, updateSets []int, cfg gups.Config) ([]Fig9Point, error) {
	var out []Fig9Point
	for _, us := range updateSets {
		for _, w := range windowCounts {
			c := cfg
			c.Windows = w
			c.UpdateSet = us
			c.UseTags = false
			r, err := gups.RunSpaceJMP(kernel.New(hw.NewMachine(gupsMachine(w))), c)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig9Point{
				Windows:   w,
				UpdateSet: us,
				SwitchK:   float64(r.Switches) / r.Seconds / 1e3,
				TLBMissK:  float64(r.TLBMisses) / r.Seconds / 1e3,
			})
		}
	}
	return out, nil
}

// GUPSCounters runs the SpaceJMP GUPS design with the observability layer
// enabled and returns the run plus its counter delta over the measured
// section (TLB hit rate, page-table nodes touched, cycles by category).
// Stats are switched on before the system allocates any address space, so
// every page table the run builds is observed.
func GUPSCounters(cfg gups.Config) (gups.Result, error) {
	sys := kernel.New(hw.NewMachine(gupsMachine(cfg.Windows)))
	sys.EnableStats(0)
	return gups.RunSpaceJMP(sys, cfg)
}

// Fig10 bundles the three Redis sub-figures, produced from measured costs
// on M1 (the paper's Redis machine).
type Fig10 struct {
	Clients []int

	// Figure 10a: GET throughput.
	GetJmp     []redis.Point
	GetJmpTags []redis.Point
	GetRedis   []redis.Point
	GetRedis6x []redis.Point

	// Figure 10b: SET throughput.
	SetJmp   []redis.Point
	SetRedis []redis.Point

	// Figure 10c: mixed GET/SET at full client load.
	MixPcts  []int
	MixJmp   []redis.Point
	MixRedis []redis.Point
}

// Fig10Clients is the client-count sweep of Figures 10a/10b.
var Fig10Clients = []int{1, 2, 3, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64, 100}

// Fig10SetPcts is the SET-percentage sweep of Figure 10c.
var Fig10SetPcts = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// RunFig10 measures per-op costs with and without tags and produces all
// three figures' series.
func RunFig10(segSize uint64) (*Fig10, error) {
	plain, err := redis.MeasureCosts(hw.M1(), false, segSize)
	if err != nil {
		return nil, err
	}
	tagged, err := redis.MeasureCosts(hw.M1(), true, segSize)
	if err != nil {
		return nil, err
	}
	f := &Fig10{Clients: Fig10Clients, MixPcts: Fig10SetPcts}
	f.GetJmp = plain.GetSeries(f.Clients)
	f.GetJmpTags = tagged.GetSeries(f.Clients)
	f.GetRedis = plain.BaselineGetSeries(f.Clients, 1)
	f.GetRedis6x = plain.BaselineGetSeries(f.Clients, 6)
	f.SetJmp = plain.SetSeries(f.Clients)
	f.SetRedis = plain.BaselineSetSeries(f.Clients)
	f.MixJmp = plain.MixSeries(12, f.MixPcts)
	f.MixRedis = plain.BaselineMixSeries(12, f.MixPcts)
	return f, nil
}

// samMachine is M1 (the SAMTools runs use the most mature DragonFly
// platform; the exact host is not stated, results are normalized).
func samMachine() hw.MachineConfig {
	cfg := hw.M1()
	cfg.Mem = mem.Config{DRAMSize: 4 << 30}
	return cfg
}

// Fig11Row is one operation of Figure 11 with per-mode simulated seconds
// (the paper normalizes to the slowest; the harness prints both).
type Fig11Row struct {
	Op       sam.Op
	SAM      float64
	BAM      float64
	SpaceJMP float64
}

// Fig11 runs the three serialization modes over the same synthetic data.
func Fig11(records int, seed int64) ([]Fig11Row, error) {
	recs := sam.Generate(records, seed)
	samRes, err := sam.RunSAM(hw.NewMachine(samMachine()), append([]sam.Record(nil), recs...))
	if err != nil {
		return nil, err
	}
	bamRes, err := sam.RunBAM(hw.NewMachine(samMachine()), append([]sam.Record(nil), recs...))
	if err != nil {
		return nil, err
	}
	jmpRes, err := sam.RunSpaceJMP(kernel.New(hw.NewMachine(samMachine())), append([]sam.Record(nil), recs...))
	if err != nil {
		return nil, err
	}
	var out []Fig11Row
	for _, op := range sam.Ops {
		out = append(out, Fig11Row{
			Op: op, SAM: samRes.Seconds[op], BAM: bamRes.Seconds[op], SpaceJMP: jmpRes.Seconds[op],
		})
	}
	return out, nil
}

// Fig12Row is one operation of Figure 12: mmap'ed region files versus
// SpaceJMP, simulated seconds.
type Fig12Row struct {
	Op       sam.Op
	Mmap     float64
	SpaceJMP float64
}

// Fig12 runs the two in-memory modes over the same synthetic data.
func Fig12(records int, seed int64) ([]Fig12Row, error) {
	recs := sam.Generate(records, seed)
	mmapRes, err := sam.RunMmap(hw.NewMachine(samMachine()), append([]sam.Record(nil), recs...))
	if err != nil {
		return nil, err
	}
	jmpRes, err := sam.RunSpaceJMP(kernel.New(hw.NewMachine(samMachine())), append([]sam.Record(nil), recs...))
	if err != nil {
		return nil, err
	}
	var out []Fig12Row
	for _, op := range sam.Ops {
		out = append(out, Fig12Row{Op: op, Mmap: mmapRes.Seconds[op], SpaceJMP: jmpRes.Seconds[op]})
	}
	return out, nil
}
