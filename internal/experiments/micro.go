// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each function returns the series/rows the corresponding
// plot reports; cmd/spacejmp-bench prints them and the root bench suite
// wraps them in testing.B benchmarks. EXPERIMENTS.md records how each
// reproduction compares with the paper.
package experiments

import (
	"fmt"
	"math/rand"

	"spacejmp/internal/arch"
	"spacejmp/internal/caps"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/pt"
	"spacejmp/internal/urpc"
	"spacejmp/internal/vm"
)

// Fig1Point is one x-position of Figure 1: mmap/munmap latency for a
// region of 2^SizePow bytes with 4 KiB pages, with and without cached
// translations.
type Fig1Point struct {
	SizePow       int
	MapMs         float64
	UnmapMs       float64
	MapCachedMs   float64
	UnmapCachedMs float64
	// Counter evidence for the latency claim: table nodes allocated by the
	// plain map (grows with region size) vs by the cached attach (O(1) —
	// the subtree already exists and is only linked).
	MapNodes       uint64
	MapCachedNodes uint64
}

// Fig1 measures page-table construction and removal cost for region sizes
// 2^15..2^maxPow bytes (the paper sweeps to 2^35). "Cached" rows attach
// the region through a pre-built translation subtree (§4.1's cached
// translations) instead of constructing page tables.
func Fig1(maxPow int) ([]Fig1Point, error) {
	m := hw.NewMachine(hw.M2())
	sink := m.EnableStats(0)
	var out []Fig1Point
	for p := 15; p <= maxPow; p++ {
		size := uint64(1) << p
		space, err := vm.NewSpace(m.PM)
		if err != nil {
			return nil, err
		}
		space.SetObserver(sink)
		c := m.Cores[0]

		measure := func(f func() error) (float64, error) {
			before := c.Cycles()
			ptBefore := space.Table().Stats()
			if err := f(); err != nil {
				return 0, err
			}
			c.ChargePT(hw.DeltaPT(ptBefore, space.Table().Stats()))
			c.AddCycles(357) // the system call itself
			return m.CyclesToNs(c.Cycles()-before) / 1e6, nil
		}

		pt_ := Fig1Point{SizePow: p}
		nodesBefore := sink.Snapshot().PT.NodesAllocated
		if pt_.MapMs, err = measure(func() error {
			_, err := space.MapAnon(core.GlobalBase, size, arch.PermRW, vm.MapFixed|vm.MapPopulate)
			return err
		}); err != nil {
			return nil, err
		}
		pt_.MapNodes = sink.Snapshot().PT.NodesAllocated - nodesBefore
		if pt_.UnmapMs, err = measure(func() error {
			return space.Unmap(core.GlobalBase, size)
		}); err != nil {
			return nil, err
		}

		// Cached translations: a segment carrying its own subtree links in
		// O(1) regardless of region size.
		sys := kernel.New(m)
		proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
		if err != nil {
			return nil, err
		}
		th, err := proc.NewThread()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("fig1.seg%d", p)
		sid, err := th.SegAlloc(name, core.GlobalBase, size, arch.PermRW)
		if err != nil {
			return nil, err
		}
		if err := th.SegCtl(sid, core.CacheTranslations()); err != nil {
			return nil, err
		}
		seg, err := sys.SegByID(sid)
		if err != nil {
			return nil, err
		}
		sub, ok := cacheSubtreeOf(m, seg)
		if !ok {
			return nil, fmt.Errorf("fig1: no cached subtree for %s", name)
		}
		target, err := pt.New(m.PM)
		if err != nil {
			return nil, err
		}
		target.SetObserver(sink.PTObs())
		nodesBefore = sink.Snapshot().PT.NodesAllocated
		if pt_.MapCachedMs, err = measure(func() error {
			return target.LinkSubtree(core.GlobalBase, 3, sub)
		}); err != nil {
			return nil, err
		}
		pt_.MapCachedNodes = sink.Snapshot().PT.NodesAllocated - nodesBefore
		if pt_.UnmapCachedMs, err = measure(func() error {
			return target.UnlinkSubtree(core.GlobalBase, 3)
		}); err != nil {
			return nil, err
		}
		target.Destroy()
		if err := th.SegFree(sid); err != nil {
			return nil, err
		}
		proc.Exit()
		space.Destroy()
		out = append(out, pt_)
	}
	return out, nil
}

// cacheSubtreeOf extracts a segment's cached-translation PDPT by reading
// its private root's PML4 slot (as Attachment.installSeg does internally).
func cacheSubtreeOf(m *hw.Machine, seg *core.Segment) (arch.PhysAddr, bool) {
	return core.CacheSubtree(m.PM, seg)
}

// Table1Row describes one platform of Table 1.
type Table1Row struct {
	Name   string
	Memory string
	CPUs   string
	GHz    float64
}

// Table1 returns the simulated platforms.
func Table1() []Table1Row {
	rows := []Table1Row{}
	for _, cfg := range []hw.MachineConfig{hw.M1(), hw.M2(), hw.M3()} {
		rows = append(rows, Table1Row{
			Name:   cfg.Name,
			Memory: fmt.Sprintf("%d GiB", cfg.Mem.DRAMSize>>30),
			CPUs:   fmt.Sprintf("%dx%dc", cfg.Sockets, cfg.CoresPerSocket),
			GHz:    cfg.GHz,
		})
	}
	return rows
}

// Table2Row is one measurement of Table 2 (cycles on M2).
type Table2Row struct {
	Operation   string
	DragonFly   uint64
	DragonFlyT  uint64 // tagged
	Barrelfish  uint64
	BarrelfishT uint64
}

// Table2 measures the context-switch breakdown end to end on both
// personalities, tags off and on.
func Table2() ([]Table2Row, error) {
	measure := func(mkSys func(m *hw.Machine) *core.System, tagged bool) (cr3, syscall, vasSwitch uint64, err error) {
		m := hw.NewMachine(hw.M2())
		sys := mkSys(m)
		proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
		if err != nil {
			return 0, 0, 0, err
		}
		th, err := proc.NewThread()
		if err != nil {
			return 0, 0, 0, err
		}
		vid, err := th.VASCreate("t2", 0o600)
		if err != nil {
			return 0, 0, 0, err
		}
		if tagged {
			if err := th.VASCtl(vid, core.SetTag()); err != nil {
				return 0, 0, 0, err
			}
		}
		h, err := th.VASAttach(vid)
		if err != nil {
			return 0, 0, 0, err
		}
		cost := &m.Cfg.Cost
		cr3 = cost.CR3Load
		if tagged {
			cr3 = cost.CR3LoadTagged
		}
		syscall = sys.P.SwitchCycles()
		before := th.Core.Cycles()
		if err := th.VASSwitch(h); err != nil {
			return 0, 0, 0, err
		}
		vasSwitch = th.Core.Cycles() - before
		return cr3, syscall, vasSwitch, nil
	}
	dfly := func(m *hw.Machine) *core.System { return kernel.New(m) }
	bfish := func(m *hw.Machine) *core.System { s, _ := caps.New(m); return s }

	var rows [3]Table2Row
	rows[0].Operation = "CR3 load"
	rows[1].Operation = "system call"
	rows[2].Operation = "vas_switch"
	for i, mk := range []func(*hw.Machine) *core.System{dfly, bfish} {
		for j, tagged := range []bool{false, true} {
			cr3, sc, vs, err := measure(mk, tagged)
			if err != nil {
				return nil, err
			}
			set := func(r *Table2Row, v uint64) {
				switch {
				case i == 0 && j == 0:
					r.DragonFly = v
				case i == 0 && j == 1:
					r.DragonFlyT = v
				case i == 1 && j == 0:
					r.Barrelfish = v
				default:
					r.BarrelfishT = v
				}
			}
			set(&rows[0], cr3)
			set(&rows[1], sc)
			set(&rows[2], vs)
		}
	}
	return rows[:], nil
}

// Fig6Point is one x-position of Figure 6: average page-touch latency for
// a working set of Pages pages under three regimes.
type Fig6Point struct {
	Pages        int
	SwitchTagOff float64 // cycles per touch, CR3 rewritten untagged between touches
	SwitchTagOn  float64 // cycles per touch, tagged CR3 rewrite between touches
	NoSwitch     float64 // cycles per touch, no CR3 writes
	// Counter evidence for the latency claim: TLB misses over the measured
	// touches per regime. Untagged CR3 rewrites flush the TLB, so every
	// touch misses; tags retain entries across rewrites.
	MissTagOff uint64
	MissTagOn  uint64
	MissNone   uint64
}

// Fig6 reproduces the random page-walking benchmark on M3: for a given set
// of pages, load one cache line from a randomly chosen page; a CR3 write
// is introduced between iterations; tags on/off/no-switch are compared.
func Fig6(pageCounts []int, touches int) ([]Fig6Point, error) {
	m := hw.NewMachine(hw.M3())
	sink := m.EnableStats(0)
	var out []Fig6Point
	for _, pages := range pageCounts {
		space, err := vm.NewSpace(m.PM)
		if err != nil {
			return nil, err
		}
		base := core.GlobalBase
		if _, err := space.MapAnon(base, uint64(pages)*arch.PageSize, arch.PermRW, vm.MapFixed|vm.MapPopulate); err != nil {
			return nil, err
		}
		c := m.Cores[0]
		run := func(tag arch.ASID, reloadCR3 bool) (float64, uint64, error) {
			rng := rand.New(rand.NewSource(99))
			c.LoadCR3(space.Table(), tag)
			// Warm pass.
			for i := 0; i < pages; i++ {
				if _, err := c.Load64(base + arch.VirtAddr(i*arch.PageSize)); err != nil {
					return 0, 0, err
				}
			}
			missBefore := sink.Snapshot().TLB.Misses
			var touchCycles uint64
			for i := 0; i < touches; i++ {
				if reloadCR3 {
					c.LoadCR3(space.Table(), tag)
				}
				va := base + arch.VirtAddr(rng.Intn(pages)*arch.PageSize)
				before := c.Cycles()
				if _, err := c.Load64(va); err != nil {
					return 0, 0, err
				}
				touchCycles += c.Cycles() - before
			}
			misses := sink.Snapshot().TLB.Misses - missBefore
			return float64(touchCycles) / float64(touches), misses, nil
		}
		p := Fig6Point{Pages: pages}
		if p.SwitchTagOff, p.MissTagOff, err = run(arch.ASIDFlush, true); err != nil {
			return nil, err
		}
		if p.SwitchTagOn, p.MissTagOn, err = run(7, true); err != nil {
			return nil, err
		}
		if p.NoSwitch, p.MissNone, err = run(7, false); err != nil {
			return nil, err
		}
		space.Destroy()
		out = append(out, p)
	}
	return out, nil
}

// Fig7Point is one x-position of Figure 7: round-trip latency by transfer
// size for local URPC, cross-socket URPC, and SpaceJMP switching.
type Fig7Point struct {
	Bytes     int
	URPCLocal uint64 // cycles
	URPCCross uint64
	SpaceJMP  uint64
}

// Fig7 compares URPC with SpaceJMP as a local RPC mechanism on M2 under
// the Barrelfish personality (as in the paper). The SpaceJMP variant
// switches into the server's VAS and copies the payload into the
// process-local address space directly.
func Fig7(sizes []int) ([]Fig7Point, error) {
	m := hw.NewMachine(hw.M2())
	sys, _ := caps.New(m)
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return nil, err
	}
	th, err := proc.NewThread()
	if err != nil {
		return nil, err
	}
	// Server state: a VAS holding the data segment.
	vid, err := th.VASCreate("fig7.server", 0o600)
	if err != nil {
		return nil, err
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	segSize := arch.PagesIn(uint64(maxSize)+arch.PageSize) * arch.PageSize
	sid, err := th.SegAlloc("fig7.data", core.GlobalBase, segSize, arch.PermRW)
	if err != nil {
		return nil, err
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		return nil, err
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		return nil, err
	}
	echo := func(req []byte) []byte { return req }
	local := urpc.Connect(m, 0, 1, 8192, echo)
	cross := urpc.Connect(m, 2, m.Cfg.CoresPerSocket+2, 8192, echo)

	var out []Fig7Point
	buf := make([]byte, maxSize)
	for _, size := range sizes {
		p := Fig7Point{Bytes: size}
		if p.URPCLocal, err = local.CallLatency(make([]byte, size)); err != nil {
			return nil, err
		}
		if p.URPCCross, err = cross.CallLatency(make([]byte, size)); err != nil {
			return nil, err
		}
		// SpaceJMP: switch in, read the payload out of the server's
		// segment into a local buffer, switch back. Warm once.
		for warm := 0; warm < 2; warm++ {
			before := th.Core.Cycles()
			if err := th.VASSwitch(h); err != nil {
				return nil, err
			}
			if err := th.Read(core.GlobalBase, buf[:size]); err != nil {
				return nil, err
			}
			if err := th.VASSwitch(core.PrimaryHandle); err != nil {
				return nil, err
			}
			p.SpaceJMP = th.Core.Cycles() - before
		}
		out = append(out, p)
	}
	return out, nil
}
