package caps

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/mem"
)

func testKernel() *Kernel {
	return NewKernel(mem.New(mem.Config{DRAMSize: 128 << 20}))
}

func TestRetypeRAMToFrames(t *testing.T) {
	k := testKernel()
	cs := NewCSpace()
	ram, err := k.AllocRAM(cs, 2) // 4 frames
	if err != nil {
		t.Fatal(err)
	}
	frames, err := k.Retype(cs, ram, TypeFrame, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames", len(frames))
	}
	var prev arch.PhysAddr
	for i, s := range frames {
		c, err := cs.Lookup(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.Type != TypeFrame || c.Size != arch.PageSize {
			t.Errorf("frame %d: %v size %d", i, c.Type, c.Size)
		}
		if i > 0 && c.Base != prev+arch.PageSize {
			t.Errorf("frame %d not contiguous", i)
		}
		prev = c.Base
	}
}

func TestRetypeOnlyOnce(t *testing.T) {
	k := testKernel()
	cs := NewCSpace()
	ram, _ := k.AllocRAM(cs, 0)
	if _, err := k.Retype(cs, ram, TypeFrame, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Retype(cs, ram, TypePageTable, 1); err == nil {
		t.Error("double retype accepted — exclusivity rule violated")
	}
}

func TestRetypeRules(t *testing.T) {
	k := testKernel()
	cs := NewCSpace()
	ram, _ := k.AllocRAM(cs, 1)
	if _, err := k.Retype(cs, ram, TypeVAS, 1); err == nil {
		t.Error("RAM retyped to VAS")
	}
	if _, err := k.Retype(cs, ram, TypeFrame, 3); err == nil {
		t.Error("uneven split accepted")
	}
	frames, err := k.Retype(cs, ram, TypeFrame, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Retype(cs, frames[0], TypePageTable, 1); err == nil {
		t.Error("frame retyped")
	}
}

func TestMintRightsMonotonic(t *testing.T) {
	k := testKernel()
	a, b := NewCSpace(), NewCSpace()
	ram, _ := k.AllocRAM(a, 0)
	frames, _ := k.Retype(a, ram, TypeFrame, 1)
	ro, err := k.Mint(a, frames[0], b, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := b.Lookup(ro)
	if c.Rights != RightRead {
		t.Errorf("minted rights = %b", c.Rights)
	}
	// The read-only copy has no grant right, so it cannot be re-minted.
	if _, err := k.Mint(b, ro, a, RightRead); err == nil {
		t.Error("grantless capability minted onward")
	}
	// Nor can rights be amplified (construct a grantable read cap first).
	rg, err := k.Mint(a, frames[0], b, RightRead|RightGrant)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Mint(b, rg, a, RightRead|RightWrite); err == nil {
		t.Error("rights amplified through mint")
	}
}

func TestRevokeCascades(t *testing.T) {
	k := testKernel()
	a, b, c := NewCSpace(), NewCSpace(), NewCSpace()
	ram, _ := k.AllocRAM(a, 0)
	frames, _ := k.Retype(a, ram, TypeFrame, 1)
	s1, err := k.Mint(a, frames[0], b, RightRead|RightGrant)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := k.Mint(b, s1, c, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Revoke(a, frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Lookup(s1); err == nil {
		t.Error("direct child survived revoke")
	}
	if _, err := c.Lookup(s2); err == nil {
		t.Error("grandchild survived revoke")
	}
	// The revoked root itself remains usable.
	if _, err := a.Lookup(frames[0]); err != nil {
		t.Errorf("revoke destroyed the root: %v", err)
	}
}

func TestUserSpacePageTableConstruction(t *testing.T) {
	// §4.2: a process allocates memory for its own page tables and maps
	// frames by capability invocation; the kernel only validates.
	k := testKernel()
	cs := NewCSpace()
	ptRAM, _ := k.AllocRAM(cs, 0)
	ptSlots, err := k.Retype(cs, ptRAM, TypePageTable, 1)
	if err != nil {
		t.Fatal(err)
	}
	vnode, err := k.CreateVNode(cs, ptSlots[0])
	if err != nil {
		t.Fatal(err)
	}
	frameRAM, _ := k.AllocRAM(cs, 0)
	frames, _ := k.Retype(cs, frameRAM, TypeFrame, 1)
	if err := k.MapFrame(vnode, cs, frames[0], 0x4000, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	r, err := vnode.Table.Walk(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := cs.Lookup(frames[0])
	if r.PA != fc.Base {
		t.Error("mapping does not hit the frame capability's memory")
	}
}

func TestMapFrameValidation(t *testing.T) {
	k := testKernel()
	cs := NewCSpace()
	ptRAM, _ := k.AllocRAM(cs, 0)
	ptSlots, _ := k.Retype(cs, ptRAM, TypePageTable, 1)
	vnode, _ := k.CreateVNode(cs, ptSlots[0])

	// Mapping a RAM (untyped) capability must be rejected.
	ram, _ := k.AllocRAM(cs, 0)
	if err := k.MapFrame(vnode, cs, ram, 0x4000, arch.PermRead); err == nil {
		t.Error("untyped memory mapped")
	}
	// Mapping writable through a read-only frame cap must be rejected.
	other := NewCSpace()
	fRAM, _ := k.AllocRAM(cs, 0)
	frames, _ := k.Retype(cs, fRAM, TypeFrame, 1)
	ro, _ := k.Mint(cs, frames[0], other, RightRead)
	if err := k.MapFrame(vnode, other, ro, 0x8000, arch.PermRW); err == nil {
		t.Error("writable mapping through read-only capability")
	}
	if err := k.MapFrame(vnode, other, ro, 0x8000, arch.PermRead); err != nil {
		t.Errorf("read-only mapping rejected: %v", err)
	}
	// VNode creation requires a PageTable capability.
	if _, err := k.CreateVNode(cs, frames[0]); err == nil {
		t.Error("vnode from frame capability")
	}
}

func TestTable2BarrelfishCalibration(t *testing.T) {
	p := Personality{}
	untagged := p.SwitchCycles() + p.SwitchBookkeeping(false) + hw.DefaultCost.CR3Load
	tagged := p.SwitchCycles() + p.SwitchBookkeeping(true) + hw.DefaultCost.CR3LoadTagged
	if untagged != 664 {
		t.Errorf("untagged vas_switch = %d cycles, Table 2 says 664", untagged)
	}
	if tagged != 462 {
		t.Errorf("tagged vas_switch = %d cycles, Table 2 says 462", tagged)
	}
	if p.SwitchCycles() != 130 {
		t.Errorf("invocation = %d, Table 2 says 130", p.SwitchCycles())
	}
}

func TestEndToEndCapabilityEnforcement(t *testing.T) {
	sys, svc := New(hw.NewMachine(hw.SmallTest()))
	owner, _ := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	ot, _ := owner.NewThread()
	vid, err := ot.VASCreate("caps-v", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ot.VASAttach(vid); err != nil {
		t.Fatalf("owner attach: %v", err)
	}
	// A stranger has no capability.
	strangerP, _ := sys.NewProcess(core.Creds{UID: 300, GID: 30})
	st, _ := strangerP.NewThread()
	if _, err := st.VASAttach(vid); !errors.Is(err, core.ErrDenied) {
		t.Errorf("capless attach: %v", err)
	}
	// The service mints them a read capability; attach now succeeds.
	if err := svc.Grant(TypeVAS, uint64(vid), 100, 300, RightRead); err != nil {
		t.Fatal(err)
	}
	if _, err := st.VASAttach(vid); err != nil {
		t.Errorf("attach after grant: %v", err)
	}
}

func TestModeGrantsHonored(t *testing.T) {
	sys, _ := New(hw.NewMachine(hw.SmallTest()))
	owner, _ := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	ot, _ := owner.NewThread()
	vid, _ := ot.VASCreate("shared", 0o644)
	mate, _ := sys.NewProcess(core.Creds{UID: 200, GID: 10})
	mt, _ := mate.NewThread()
	if _, err := mt.VASAttach(vid); err != nil {
		t.Errorf("group attach under 0644: %v", err)
	}
	// Group member cannot write-ctl (group bits are read-only).
	if err := mt.VASCtl(vid, core.SetTag()); !errors.Is(err, core.ErrDenied) {
		t.Errorf("group write ctl: %v", err)
	}
}

func TestSwitchCostEndToEndBarrelfish(t *testing.T) {
	sys, _ := New(hw.NewMachine(hw.SmallTest()))
	p, _ := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	th, _ := p.NewThread()
	vid, _ := th.VASCreate("v", 0o600)
	h, _ := th.VASAttach(vid)
	before := th.Core.Cycles()
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if got := th.Core.Cycles() - before; got != 664 {
		t.Errorf("end-to-end untagged vas_switch = %d cycles, want 664", got)
	}
}
