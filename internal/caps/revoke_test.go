package caps

import (
	"errors"
	"testing"

	"spacejmp/internal/core"
	"spacejmp/internal/hw"
)

func TestGrantRequiresSourceCapability(t *testing.T) {
	sys, svc := New(hw.NewMachine(hw.SmallTest()))
	owner, _ := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	ot, _ := owner.NewThread()
	vid, _ := ot.VASCreate("g", 0o600)
	// UID 200 holds nothing; granting *from* 200 must fail.
	if err := svc.Grant(TypeVAS, uint64(vid), 200, 300, RightRead); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("grant from capless uid: %v", err)
	}
}

func TestRevocationCutsAccess(t *testing.T) {
	sys, svc := New(hw.NewMachine(hw.SmallTest()))
	owner, _ := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	ot, _ := owner.NewThread()
	vid, _ := ot.VASCreate("r", 0o600)
	if err := svc.Grant(TypeVAS, uint64(vid), 100, 300, RightRead); err != nil {
		t.Fatal(err)
	}
	strangerP, _ := sys.NewProcess(core.Creds{UID: 300, GID: 30})
	st, _ := strangerP.NewThread()
	if _, err := st.VASAttach(vid); err != nil {
		t.Fatalf("attach after grant: %v", err)
	}
	// The owner revokes its capability's descendants: the grant dies.
	ownerCS := svc.CSpaceOf(100)
	var slot Slot
	ownerCS.mu.Lock()
	for s, c := range ownerCS.slots {
		if c.Type == TypeVAS && c.ObjID == uint64(vid) {
			slot = s
		}
	}
	ownerCS.mu.Unlock()
	if err := svc.kernel.Revoke(ownerCS, slot); err != nil {
		t.Fatal(err)
	}
	if _, err := st.VASAttach(vid); !errors.Is(err, core.ErrDenied) {
		t.Errorf("attach after revoke: %v", err)
	}
	// The owner itself still holds the root capability.
	if _, err := ot.VASAttach(vid); err != nil {
		t.Errorf("owner attach after revoking descendants: %v", err)
	}
}

func TestSegmentCapabilityChecks(t *testing.T) {
	sys, svc := New(hw.NewMachine(hw.SmallTest()))
	owner, _ := sys.NewProcess(core.Creds{UID: 100, GID: 10})
	ot, _ := owner.NewThread()
	vid, _ := ot.VASCreate("sv", 0o666)
	sid, err := ot.SegAlloc("sseg", core.GlobalBase, 1<<20, 0x3) // rw
	if err != nil {
		t.Fatal(err)
	}
	// A stranger (not in the owner's group) cannot attach the segment.
	strangerP, _ := sys.NewProcess(core.Creds{UID: 999, GID: 999})
	st, _ := strangerP.NewThread()
	if err := st.SegAttachVAS(vid, sid, 0x1); !errors.Is(err, core.ErrDenied) {
		t.Errorf("capless seg attach: %v", err)
	}
	if err := svc.Grant(TypeSegment, uint64(sid), 100, 999, RightRead); err != nil {
		t.Fatal(err)
	}
	if err := st.SegAttachVAS(vid, sid, 0x1); err != nil {
		t.Errorf("granted read seg attach: %v", err)
	}
	// Read grant does not permit a writable mapping.
	if err := st.SegDetachVAS(vid, sid); err != nil {
		t.Fatal(err)
	}
	if err := st.SegAttachVAS(vid, sid, 0x3); !errors.Is(err, core.ErrDenied) {
		t.Errorf("write mapping with read grant: %v", err)
	}
}
