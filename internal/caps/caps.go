// Package caps implements the Barrelfish personality of SpaceJMP (paper
// §4.2): a seL4-inspired typed capability system in which user space
// allocates memory for its own page tables, builds and shares translations
// by explicit capability invocation, and a user-level SpaceJMP service
// tracks VASes and segments, reached via RPC rather than syscalls.
//
// The kernel's only job is validating capability invocations; switching
// into a VAS is a single invocation that replaces the thread's root page
// table, which is why Barrelfish's vas_switch is cheaper than DragonFly's
// (Table 2: 664 vs 1127 cycles untagged).
package caps

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/mem"
	"spacejmp/internal/pt"
)

// Right is a capability right bit.
type Right uint8

const (
	// RightRead permits reading / mapping readable.
	RightRead Right = 1 << iota
	// RightWrite permits writing / mapping writable.
	RightWrite
	// RightExec permits executable mappings.
	RightExec
	// RightGrant permits copying the capability to another CSpace.
	RightGrant
)

// RightsAll is every right.
const RightsAll = RightRead | RightWrite | RightExec | RightGrant

// Allows reports whether r includes every right in want.
func (r Right) Allows(want Right) bool { return r&want == want }

// PermRights converts mapping permissions to the rights they require.
func PermRights(p arch.Perm) Right {
	var r Right
	if p.CanRead() {
		r |= RightRead
	}
	if p.CanWrite() {
		r |= RightWrite
	}
	if p.CanExec() {
		r |= RightExec
	}
	return r
}

// Type is a capability type. Retyping follows seL4-style rules: RAM is
// untyped memory that can be retyped exactly once into Frames or
// PageTables; object capabilities (VAS, Segment) are created by the
// SpaceJMP service.
type Type int

const (
	// TypeRAM is untyped physical memory.
	TypeRAM Type = iota
	// TypeFrame is mappable physical memory.
	TypeFrame
	// TypePageTable is memory usable as a page-table node.
	TypePageTable
	// TypeVAS names a first-class address space.
	TypeVAS
	// TypeSegment names a lockable segment.
	TypeSegment
	// TypeEndpoint is an RPC endpoint to a service.
	TypeEndpoint
)

func (t Type) String() string {
	switch t {
	case TypeRAM:
		return "ram"
	case TypeFrame:
		return "frame"
	case TypePageTable:
		return "pagetable"
	case TypeVAS:
		return "vas"
	case TypeSegment:
		return "segment"
	case TypeEndpoint:
		return "endpoint"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Capability is a kernel-validated reference to a resource.
type Capability struct {
	Type   Type
	Rights Right

	// Memory capabilities.
	Base arch.PhysAddr
	Size uint64

	// Object capabilities: an opaque reference plus an identifier the
	// service uses for lookups.
	ObjID uint64

	parent   *Capability
	children []*Capability
	retyped  bool
	revoked  bool
}

// Slot addresses a capability within a CSpace.
type Slot uint32

// CSpace is a dispatcher's capability space.
type CSpace struct {
	mu    sync.Mutex
	slots map[Slot]*Capability
	next  Slot
}

// NewCSpace creates an empty capability space.
func NewCSpace() *CSpace {
	return &CSpace{slots: map[Slot]*Capability{}, next: 1}
}

// Insert places a capability into a fresh slot.
func (cs *CSpace) Insert(c *Capability) Slot {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	s := cs.next
	cs.next++
	cs.slots[s] = c
	return s
}

// Lookup resolves a slot.
func (cs *CSpace) Lookup(s Slot) (*Capability, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c, ok := cs.slots[s]
	if !ok || c.revoked {
		return nil, fmt.Errorf("%w: caps: empty or revoked slot %d", core.ErrNotFound, s)
	}
	return c, nil
}

// Delete clears a slot (the capability may live on elsewhere).
func (cs *CSpace) Delete(s Slot) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	delete(cs.slots, s)
}

// Find returns the first live capability matching the predicate.
func (cs *CSpace) Find(pred func(*Capability) bool) (*Capability, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, c := range cs.slots {
		if !c.revoked && pred(c) {
			return c, true
		}
	}
	return nil, false
}

// Kernel is the minimal CPU-driver interface: allocate untyped memory,
// retype it, mint and revoke capabilities, and perform the page-table
// invocations user space uses to construct address spaces.
type Kernel struct {
	mu sync.Mutex
	pm *mem.PhysMem
}

// NewKernel creates the capability kernel over the machine's memory.
func NewKernel(pm *mem.PhysMem) *Kernel { return &Kernel{pm: pm} }

// AllocRAM hands out an untyped RAM capability of 2^order frames, the role
// of Barrelfish's user-space memory server.
func (k *Kernel) AllocRAM(cs *CSpace, order int) (Slot, error) {
	pa, err := k.pm.AllocFrames(order, mem.TierDRAM)
	if err != nil {
		return 0, err
	}
	c := &Capability{Type: TypeRAM, Rights: RightsAll, Base: pa, Size: (uint64(1) << order) * arch.PageSize}
	return cs.Insert(c), nil
}

// Retype converts a RAM capability into count equal-sized capabilities of
// the requested type, placed in fresh slots. A RAM capability can be
// retyped only once (the seL4 exclusivity rule the paper's §4.2 relies on:
// "Retyping of memory is checked by the kernel").
func (k *Kernel) Retype(cs *CSpace, s Slot, to Type, count int) ([]Slot, error) {
	c, err := cs.Lookup(s)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if c.Type != TypeRAM {
		return nil, fmt.Errorf("%w: caps: cannot retype %v capability", core.ErrInvalid, c.Type)
	}
	if c.retyped {
		return nil, fmt.Errorf("%w: caps: RAM capability already retyped", core.ErrBusy)
	}
	if to != TypeFrame && to != TypePageTable {
		return nil, fmt.Errorf("%w: caps: RAM cannot become %v", core.ErrInvalid, to)
	}
	if count <= 0 || c.Size%uint64(count) != 0 || (c.Size/uint64(count))%arch.PageSize != 0 {
		return nil, fmt.Errorf("%w: caps: cannot split %d bytes into %d page-aligned children", core.ErrInvalid, c.Size, count)
	}
	part := c.Size / uint64(count)
	var out []Slot
	for i := 0; i < count; i++ {
		child := &Capability{
			Type: to, Rights: c.Rights,
			Base: c.Base + arch.PhysAddr(uint64(i)*part), Size: part,
			parent: c,
		}
		c.children = append(c.children, child)
		out = append(out, cs.Insert(child))
	}
	c.retyped = true
	return out, nil
}

// Mint copies a capability into dst with a subset of its rights. Requires
// RightGrant on the source.
func (k *Kernel) Mint(src *CSpace, s Slot, dst *CSpace, rights Right) (Slot, error) {
	c, err := src.Lookup(s)
	if err != nil {
		return 0, err
	}
	if !c.Rights.Allows(RightGrant) {
		return 0, fmt.Errorf("%w: caps: source lacks grant right", core.ErrDenied)
	}
	if !c.Rights.Allows(rights) {
		return 0, fmt.Errorf("%w: caps: minting rights %b exceed source %b", core.ErrDenied, rights, c.Rights)
	}
	child := &Capability{
		Type: c.Type, Rights: rights, Base: c.Base, Size: c.Size, ObjID: c.ObjID,
		parent: c,
	}
	k.mu.Lock()
	c.children = append(c.children, child)
	k.mu.Unlock()
	return dst.Insert(child), nil
}

// Revoke invalidates every descendant of the capability (and, transitively,
// their descendants), the mechanism that reclaims SpaceJMP objects in the
// Barrelfish prototype ("revoking the process's root page table prohibits
// the process from switching into the VAS").
func (k *Kernel) Revoke(cs *CSpace, s Slot) error {
	c, err := cs.Lookup(s)
	if err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	var kill func(x *Capability)
	kill = func(x *Capability) {
		for _, ch := range x.children {
			ch.revoked = true
			kill(ch)
		}
		x.children = nil
	}
	kill(c)
	c.retyped = false // RAM may be retyped again after revocation
	return nil
}

// VNode wraps a page table constructed from user-held capabilities, so user
// space can build address spaces without kernel memory allocation.
type VNode struct {
	Table *pt.Table
	cap   *Capability
}

// CreateVNode turns a PageTable capability into a usable page-table root.
// (The simulation allocates the pt.Table's root from the capability's
// memory conceptually; the node accounting stays in pt.)
func (k *Kernel) CreateVNode(cs *CSpace, s Slot) (*VNode, error) {
	c, err := cs.Lookup(s)
	if err != nil {
		return nil, err
	}
	if c.Type != TypePageTable {
		return nil, fmt.Errorf("%w: caps: vnode requires a pagetable capability, got %v", core.ErrInvalid, c.Type)
	}
	table, err := pt.New(k.pm)
	if err != nil {
		return nil, err
	}
	return &VNode{Table: table, cap: c}, nil
}

// MapFrame validates and installs a mapping of a Frame capability into a
// VNode: the frame's rights must cover the requested permissions. This is
// the safety property §4.2 leans on: "the capability system enforces only
// valid mappings".
func (k *Kernel) MapFrame(v *VNode, cs *CSpace, frame Slot, va arch.VirtAddr, perm arch.Perm) error {
	c, err := cs.Lookup(frame)
	if err != nil {
		return err
	}
	if c.Type != TypeFrame {
		return fmt.Errorf("%w: caps: map requires a frame capability, got %v", core.ErrInvalid, c.Type)
	}
	if !c.Rights.Allows(PermRights(perm)) {
		return fmt.Errorf("%w: caps: frame rights %b do not permit %v mapping", core.ErrDenied, c.Rights, perm)
	}
	return v.Table.Map(va, c.Base, c.Size, arch.PageSize, perm, false)
}
