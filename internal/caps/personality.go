package caps

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
)

// Table 2 calibration (Barrelfish on M2, cycles).
const (
	// InvocationCycles is one capability invocation — Barrelfish's
	// "system call" row in Table 2.
	InvocationCycles = 130
	// bookkeeping = vas_switch total - invocation - CR3 load.
	bookkeepingTagged   = 462 - InvocationCycles - 224
	bookkeepingUntagged = 664 - InvocationCycles - 130

	// RPCCycles models one round trip to the user-space SpaceJMP service:
	// two cache-line messages plus a kernel entry on each side and the
	// service's dispatch work. Management operations pay this instead of a
	// syscall.
	RPCCycles = 2*100 + 2*InvocationCycles + 340
)

// Service is the user-level SpaceJMP service: it owns the capability state
// for every VAS and segment and answers process RPCs. Management logic runs
// here, entirely outside the kernel (§4.2).
type Service struct {
	kernel *Kernel

	mu      sync.Mutex
	cspaces map[uint32]*CSpace // per-UID dispatcher capability spaces
	// modeGrants records rights implied by an object's Unix-style creation
	// mode for group members and everyone else, published in the service's
	// registry (Barrelfish has no ambient UID model; the mode argument of
	// vas_create is honored by the service minting these virtual grants).
	modeGrants map[grantKey]modeGrant
}

type grantKey struct {
	kind  Type
	objID uint64
}

type modeGrant struct {
	ownerGID uint32
	group    Right
	others   Right
}

// NewService boots the user-space service over a capability kernel.
func NewService(k *Kernel) *Service {
	return &Service{kernel: k, cspaces: map[uint32]*CSpace{}, modeGrants: map[grantKey]modeGrant{}}
}

// CSpaceOf returns (creating on demand) the capability space of a UID's
// dispatcher.
func (s *Service) CSpaceOf(uid uint32) *CSpace {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.cspaces[uid]
	if !ok {
		cs = NewCSpace()
		s.cspaces[uid] = cs
	}
	return cs
}

func modeRights(bits uint16) Right {
	var r Right
	if bits&4 != 0 {
		r |= RightRead
	}
	if bits&2 != 0 {
		r |= RightWrite
	}
	if bits&1 != 0 {
		r |= RightExec
	}
	return r
}

// register creates the owner capability for a new object and publishes the
// mode-derived grants.
func (s *Service) register(kind Type, objID uint64, owner core.Creds, mode uint16) {
	cs := s.CSpaceOf(owner.UID)
	cs.Insert(&Capability{Type: kind, Rights: RightsAll, ObjID: objID})
	s.mu.Lock()
	s.modeGrants[grantKey{kind, objID}] = modeGrant{
		ownerGID: owner.GID,
		group:    modeRights(mode >> 3),
		others:   modeRights(mode),
	}
	s.mu.Unlock()
}

// check authorizes creds for rights on an object: first by capability
// possession, then by the published mode grants.
func (s *Service) check(kind Type, objID uint64, creds core.Creds, want Right) error {
	cs := s.CSpaceOf(creds.UID)
	if _, ok := cs.Find(func(c *Capability) bool {
		return c.Type == kind && c.ObjID == objID && c.Rights.Allows(want)
	}); ok {
		return nil
	}
	s.mu.Lock()
	g, ok := s.modeGrants[grantKey{kind, objID}]
	s.mu.Unlock()
	if ok {
		if creds.GID == g.ownerGID && g.group.Allows(want) {
			return nil
		}
		if g.others.Allows(want) {
			return nil
		}
	}
	return fmt.Errorf("%w: uid %d holds no %v capability for object %d with rights %b",
		core.ErrDenied, creds.UID, kind, objID, want)
}

// Grant mints a capability for an object from one UID's cspace into
// another's with the given rights, the Barrelfish way of sharing a VAS or
// segment.
func (s *Service) Grant(kind Type, objID uint64, from, to uint32, rights Right) error {
	src := s.CSpaceOf(from)
	c, ok := src.Find(func(c *Capability) bool { return c.Type == kind && c.ObjID == objID })
	if !ok {
		return fmt.Errorf("%w: uid %d holds no %v capability for object %d", core.ErrNotFound, from, kind, objID)
	}
	// Re-find the slot to mint from.
	var slot Slot
	src.mu.Lock()
	for sl, cc := range src.slots {
		if cc == c {
			slot = sl
			break
		}
	}
	src.mu.Unlock()
	_, err := s.kernel.Mint(src, slot, s.CSpaceOf(to), rights)
	return err
}

// Personality adapts the service to the core.Personality interface.
type Personality struct {
	Service *Service
}

var _ core.Personality = Personality{}

// Name identifies the personality.
func (Personality) Name() string { return "barrelfish" }

// ControlCycles is an RPC round trip to the user-space service.
func (Personality) ControlCycles() uint64 { return RPCCycles }

// SwitchCycles is one capability invocation replacing the root page table.
func (Personality) SwitchCycles() uint64 { return InvocationCycles }

// SwitchBookkeeping is the dispatcher/runtime work per switch (Table 2).
func (Personality) SwitchBookkeeping(tagged bool) uint64 {
	if tagged {
		return bookkeepingTagged
	}
	return bookkeepingUntagged
}

// CheckVAS requires a VAS capability (or a mode grant) with the rights
// matching the requested permissions.
func (p Personality) CheckVAS(creds core.Creds, v *core.VAS, want arch.Perm) error {
	return p.Service.check(TypeVAS, uint64(v.ID), creds, PermRights(want))
}

// CheckSeg requires a Segment capability (or a mode grant).
func (p Personality) CheckSeg(creds core.Creds, seg *core.Segment, want arch.Perm) error {
	return p.Service.check(TypeSegment, uint64(seg.ID), creds, PermRights(want))
}

// VASCreated registers the owner capability in the service.
func (p Personality) VASCreated(creds core.Creds, v *core.VAS) {
	p.Service.register(TypeVAS, uint64(v.ID), creds, v.Mode)
	v.Security = p.Service
}

// SegCreated registers the owner capability. Segments default to
// owner+group access like the DragonFly personality's 0660 ACL.
func (p Personality) SegCreated(creds core.Creds, seg *core.Segment) {
	p.Service.register(TypeSegment, uint64(seg.ID), creds, 0o660)
	seg.Security = p.Service
}

// New boots a SpaceJMP system with the Barrelfish personality on machine m,
// returning the system and the user-space service for capability grants.
func New(m *hw.Machine) (*core.System, *Service) {
	svc := NewService(NewKernel(m.PM))
	return core.NewSystem(m, Personality{Service: svc}), svc
}
