// Package arch defines the architectural constants and primitive types of
// the simulated x86-64 machine: physical and virtual addresses, page sizes,
// page-table geometry, permissions, and address-space identifiers.
//
// Every other package in the tree builds on these definitions, mirroring how
// the SpaceJMP prototypes (ASPLOS 2016) build on the x86-64 architecture.
package arch

import "fmt"

// PhysAddr is an address in the simulated physical address space.
type PhysAddr uint64

// VirtAddr is an address in a simulated virtual address space.
type VirtAddr uint64

// ASID is an address-space identifier used to tag TLB entries. x86-64 PCIDs
// are 12 bits wide; the value 0 is reserved to mean "untagged": loading CR3
// with ASID 0 flushes the TLB, exactly as in the paper's prototypes.
type ASID uint16

const (
	// ASIDFlush is the reserved tag that always triggers a full TLB flush
	// on a context switch (see paper §4.4).
	ASIDFlush ASID = 0

	// MaxASID is the largest valid tag (12-bit PCID space).
	MaxASID ASID = 1<<12 - 1
)

// Page sizes supported by the simulated MMU.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB

	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift // 2 MiB

	GiantPageShift = 30
	GiantPageSize  = 1 << GiantPageShift // 1 GiB
)

// Virtual-address geometry. CPUs today pass 48 bits to the translation unit
// (256 TiB); the paper's motivation (§2.1) is precisely that this is smaller
// than emerging physical memories.
const (
	VABits = 48
	VASize = uint64(1) << VABits

	// Page-table geometry: 4 levels of 512-entry tables.
	PTEntries   = 512
	PTIndexBits = 9
	PTLevels    = 4
)

// CacheLineSize is the unit of URPC message transfer (Figure 7).
const CacheLineSize = 64

// Canonical reports whether va is a canonical 48-bit address. The simulator
// uses the lower half only, so canonical here means "fits in 48 bits".
func (va VirtAddr) Canonical() bool { return uint64(va) < VASize }

// PageAligned reports whether va is 4 KiB aligned.
func (va VirtAddr) PageAligned() bool { return va&(PageSize-1) == 0 }

// PageNumber returns the 4 KiB virtual page number containing va.
func (va VirtAddr) PageNumber() uint64 { return uint64(va) >> PageShift }

// PageOffset returns the offset of va within its 4 KiB page.
func (va VirtAddr) PageOffset() uint64 { return uint64(va) & (PageSize - 1) }

// Index returns the page-table index of va at the given level, where level 3
// is the root (PML4) and level 0 is the leaf page table (PT).
func (va VirtAddr) Index(level int) uint64 {
	shift := PageShift + level*PTIndexBits
	return (uint64(va) >> shift) & (PTEntries - 1)
}

// LevelCoverage returns the number of bytes of virtual address space covered
// by a single entry of a table at the given level (level 0 = PT).
func LevelCoverage(level int) uint64 {
	return uint64(1) << (PageShift + level*PTIndexBits)
}

// AlignDown rounds va down to a multiple of align (a power of two).
func AlignDown(va VirtAddr, align uint64) VirtAddr {
	return VirtAddr(uint64(va) &^ (align - 1))
}

// AlignUp rounds va up to a multiple of align (a power of two).
func AlignUp(va VirtAddr, align uint64) VirtAddr {
	return VirtAddr((uint64(va) + align - 1) &^ (align - 1))
}

// PagesIn returns the number of 4 KiB pages needed to hold size bytes.
func PagesIn(size uint64) uint64 {
	return (size + PageSize - 1) / PageSize
}

// Perm describes access permissions on a mapping or segment, a subset of the
// PTE permission bits exposed through the SpaceJMP API.
type Perm uint8

const (
	// PermRead grants load access.
	PermRead Perm = 1 << iota
	// PermWrite grants store access.
	PermWrite
	// PermExec grants instruction-fetch access.
	PermExec
)

// PermRW is the common read-write permission.
const PermRW = PermRead | PermWrite

// CanRead reports whether p includes read access.
func (p Perm) CanRead() bool { return p&PermRead != 0 }

// CanWrite reports whether p includes write access.
func (p Perm) CanWrite() bool { return p&PermWrite != 0 }

// CanExec reports whether p includes execute access.
func (p Perm) CanExec() bool { return p&PermExec != 0 }

// Allows reports whether p grants every right in need.
func (p Perm) Allows(need Perm) bool { return p&need == need }

func (p Perm) String() string {
	b := []byte("---")
	if p.CanRead() {
		b[0] = 'r'
	}
	if p.CanWrite() {
		b[1] = 'w'
	}
	if p.CanExec() {
		b[2] = 'x'
	}
	return string(b)
}

// Access is the kind of memory access being attempted, used by the MMU and
// fault handler to validate permissions.
type Access uint8

const (
	// AccessRead is a data load.
	AccessRead Access = iota
	// AccessWrite is a data store.
	AccessWrite
	// AccessExec is an instruction fetch.
	AccessExec
)

// Perm converts an access kind to the permission it requires.
func (a Access) Perm() Perm {
	switch a {
	case AccessWrite:
		return PermWrite
	case AccessExec:
		return PermExec
	default:
		return PermRead
	}
}

func (a Access) String() string {
	switch a {
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return "read"
	}
}

func (pa PhysAddr) String() string { return fmt.Sprintf("pa:%#x", uint64(pa)) }
func (va VirtAddr) String() string { return fmt.Sprintf("va:%#x", uint64(va)) }
