package arch

import (
	"testing"
	"testing/quick"
)

func TestIndexDecomposition(t *testing.T) {
	// A canonical address must be reconstructable from its four table
	// indices plus the page offset.
	cases := []VirtAddr{0, 0x1000, 0xC0DE000, VirtAddr(VASize - PageSize), 0x7fff_ffff_f000}
	for _, va := range cases {
		var rebuilt uint64
		for level := 0; level < PTLevels; level++ {
			rebuilt |= va.Index(level) << (PageShift + level*PTIndexBits)
		}
		rebuilt |= va.PageOffset()
		if VirtAddr(rebuilt) != va {
			t.Errorf("decompose(%v) rebuilt %#x", va, rebuilt)
		}
	}
}

func TestIndexRange(t *testing.T) {
	f := func(raw uint64) bool {
		va := VirtAddr(raw % VASize)
		for level := 0; level < PTLevels; level++ {
			if va.Index(level) >= PTEntries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelCoverage(t *testing.T) {
	if LevelCoverage(0) != PageSize {
		t.Errorf("PT entry covers %d, want %d", LevelCoverage(0), PageSize)
	}
	if LevelCoverage(1) != HugePageSize {
		t.Errorf("PD entry covers %d, want %d", LevelCoverage(1), HugePageSize)
	}
	if LevelCoverage(2) != GiantPageSize {
		t.Errorf("PDPT entry covers %d, want %d", LevelCoverage(2), GiantPageSize)
	}
	if LevelCoverage(3) != uint64(PTEntries)*GiantPageSize {
		t.Errorf("PML4 entry covers %d", LevelCoverage(3))
	}
}

func TestAlign(t *testing.T) {
	if got := AlignDown(0x1fff, PageSize); got != 0x1000 {
		t.Errorf("AlignDown = %v", got)
	}
	if got := AlignUp(0x1001, PageSize); got != 0x2000 {
		t.Errorf("AlignUp = %v", got)
	}
	if got := AlignUp(0x2000, PageSize); got != 0x2000 {
		t.Errorf("AlignUp aligned input = %v", got)
	}
	f := func(raw uint64) bool {
		va := VirtAddr(raw % (VASize - PageSize))
		d, u := AlignDown(va, PageSize), AlignUp(va, PageSize)
		return d <= va && va <= u && d.PageAligned() && u.PageAligned() && u-d < PageSize*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesIn(t *testing.T) {
	cases := []struct {
		size, want uint64
	}{{0, 0}, {1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {10 * PageSize, 10}}
	for _, c := range cases {
		if got := PagesIn(c.size); got != c.want {
			t.Errorf("PagesIn(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestPermString(t *testing.T) {
	if s := PermRW.String(); s != "rw-" {
		t.Errorf("PermRW = %q", s)
	}
	if s := (PermRead | PermExec).String(); s != "r-x" {
		t.Errorf("r-x = %q", s)
	}
	if s := Perm(0).String(); s != "---" {
		t.Errorf("zero perm = %q", s)
	}
}

func TestPermAllows(t *testing.T) {
	if !PermRW.Allows(PermRead) || !PermRW.Allows(PermWrite) || PermRW.Allows(PermExec) {
		t.Error("PermRW Allows wrong")
	}
	if !PermRead.Allows(0) {
		t.Error("any perm should allow empty need")
	}
}

func TestAccessPerm(t *testing.T) {
	if AccessRead.Perm() != PermRead || AccessWrite.Perm() != PermWrite || AccessExec.Perm() != PermExec {
		t.Error("Access.Perm mapping wrong")
	}
}

func TestCanonical(t *testing.T) {
	if !VirtAddr(0).Canonical() || !VirtAddr(VASize-1).Canonical() {
		t.Error("low-half addresses must be canonical")
	}
	if VirtAddr(VASize).Canonical() {
		t.Error("address beyond 48 bits must not be canonical")
	}
}
