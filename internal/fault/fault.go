// Package fault is a deterministic, seedable fault-injection registry for
// the simulated machine. Components declare named injection points (frame
// allocation, NVM writes, syscall entry, message transport) and consult the
// registry on every pass through them; tests enable a point with a trigger
// policy — fire on the Nth hit, fire with a seeded probability, fire always —
// and the component turns the firing into its layer's failure mode: a failed
// allocation, a torn write, an abrupt process death, a lost message.
//
// Points that pass through a targetable component (a cluster node's request
// handler, the health monitor's prober) report their target index via
// FireAt, and a rule armed with EnableAt only matches passes through that
// target — "crash node 2", not "crash whichever node's handler runs next".
// Rules armed with Enable (target TargetAny) match every pass.
//
// Registries are per-test-scoped by construction: each Registry is an
// independent value, so one test's faults can never leak into another's.
// Determinism is per-rule: every armed rule draws from its own RNG seeded
// from the registry seed, the point name, and the target, so the firing
// pattern of one rule does not depend on how many times other points were
// hit.
//
// All methods are safe on a nil *Registry (they report "no fault"), so
// components can hold an optional registry and consult it unconditionally.
package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// Well-known injection point names. Components define the failure semantics;
// the registry only decides *when* a pass through the point fails.
const (
	// MemAlloc fails a physical frame allocation in mem.PhysMem.AllocFrames
	// with an out-of-memory error.
	MemAlloc = "mem.alloc"
	// MemWriteTorn tears a mem.PhysMem.WriteAt in half: only a prefix of
	// the buffer reaches memory before the simulated power cut. This is how
	// a checkpoint write is interrupted mid-flight.
	MemWriteTorn = "mem.write.torn"
	// CoreSyscallCrash kills the calling process abruptly at syscall entry:
	// no lock release, no detach — the kernel reaper has to clean up.
	CoreSyscallCrash = "core.syscall.crash"
	// URPCDrop loses a urpc channel message in transit: the sender is
	// charged for the send but the message never arrives.
	URPCDrop = "urpc.drop"
	// URPCDelay charges the receiving core extra cycles on a delivery,
	// modelling a delayed cache-line transfer.
	URPCDelay = "urpc.delay"
	// SrvAccept fails an accepted connection before it is served: the
	// server closes it immediately, as a listener hitting EMFILE would.
	SrvAccept = "server.accept"
	// SrvConnStall pauses a connection's reader briefly before the next
	// command, modelling a slow or half-stuck client link.
	SrvConnStall = "server.conn.stall"
	// SrvConnDrop severs a connection mid-command stream: the server
	// closes the socket without a reply, as a network partition would.
	SrvConnDrop = "server.conn.drop"
	// ClusterProbeDrop loses a cluster health probe before it is sent: the
	// monitor counts a failed probe without the node ever seeing it, the
	// way an interconnect partition looks from the prober's side. Fired
	// with the probed node's id as target.
	ClusterProbeDrop = "cluster.probe.drop"
	// ClusterNodeCrash kills a shard node's process abruptly at urpc
	// handler entry: the request goes unanswered, the kernel reaper
	// reclaims the node, and only its replicated store state survives.
	// Fired with the node's id as target.
	ClusterNodeCrash = "cluster.node.crash"
)

// TargetAny is the wildcard target: a rule armed with it matches every pass
// through its point, and a component with no target identity fires with it.
const TargetAny = -1

// A Policy decides whether the hit'th pass (1-based) through a point fires.
// rng is the rule's private deterministic source.
type Policy func(hit uint64, rng *rand.Rand) bool

// OnNth fires exactly on the nth hit (1-based) and never again.
func OnNth(n uint64) Policy {
	return func(hit uint64, _ *rand.Rand) bool { return hit == n }
}

// FromNth fires on the nth hit and on every hit after it.
func FromNth(n uint64) Policy {
	return func(hit uint64, _ *rand.Rand) bool { return hit >= n }
}

// EveryNth fires on every nth hit (the 2nd, 4th, ... for n=2). n of 0 or 1
// fires on every hit.
func EveryNth(n uint64) Policy {
	return func(hit uint64, _ *rand.Rand) bool { return n <= 1 || hit%n == 0 }
}

// Always fires on every hit.
func Always() Policy {
	return func(uint64, *rand.Rand) bool { return true }
}

// Probability fires each hit independently with probability p, drawn from
// the rule's seeded RNG — the same registry seed replays the same pattern.
func Probability(p float64) Policy {
	return func(_ uint64, rng *rand.Rand) bool { return rng.Float64() < p }
}

// rule is one armed (point, target) pair.
type rule struct {
	target int
	desc   string
	policy Policy
	rng    *rand.Rand
	hits   uint64
	fired  uint64
}

// Registry holds the armed injection rules of one test scope.
type Registry struct {
	mu       sync.Mutex
	seed     int64
	points   map[string][]*rule
	observer func(name string)
}

// SetObserver installs a callback invoked (outside the registry lock) every
// time a point fires, letting an observability layer count and trace
// injected faults. A nil callback disables observation.
func (r *Registry) SetObserver(fn func(name string)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = fn
}

// New creates a registry. The seed determines every probabilistic policy's
// firing pattern.
func New(seed int64) *Registry {
	return &Registry{seed: seed, points: map[string][]*rule{}}
}

// ruleSeed mixes the registry seed with the point name and target, giving
// each rule an independent deterministic stream.
func ruleSeed(seed int64, name string, target int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var tb [8]byte
	binary.LittleEndian.PutUint64(tb[:], uint64(int64(target)))
	h.Write(tb[:])
	return seed ^ int64(h.Sum64())
}

// Enable arms a point with a policy matching every pass (TargetAny),
// resetting its hit and fired counters.
func (r *Registry) Enable(name string, p Policy) {
	r.EnableAt(name, TargetAny, "custom", p)
}

// EnableAt arms a point with a policy scoped to one target (TargetAny
// matches every pass). Re-arming an existing (point, target) pair replaces
// its rule and resets its counters; rules on other targets are untouched.
// desc labels the policy in introspection output.
func (r *Registry) EnableAt(name string, target int, desc string, p Policy) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	nr := &rule{
		target: target,
		desc:   desc,
		policy: p,
		rng:    rand.New(rand.NewSource(ruleSeed(r.seed, name, target))),
	}
	rules := r.points[name]
	for i, pt := range rules {
		if pt.target == target {
			rules[i] = nr
			return
		}
	}
	r.points[name] = append(rules, nr)
}

// Disable disarms every rule on the named point. Counters are discarded.
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.points, name)
}

// DisableAt disarms the rule on one (point, target) pair, leaving rules on
// other targets armed.
func (r *Registry) DisableAt(name string, target int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rules := r.points[name]
	for i, pt := range rules {
		if pt.target == target {
			r.points[name] = append(rules[:i], rules[i+1:]...)
			break
		}
	}
	if len(r.points[name]) == 0 {
		delete(r.points, name)
	}
}

// Reset disarms every point — the per-test cleanup when a registry is shared
// across subtests.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points = map[string][]*rule{}
}

// Fire records one pass through the named point with no target identity and
// reports whether the fault fires. Only TargetAny rules can match. Unarmed
// points (and nil registries) never fire.
func (r *Registry) Fire(name string) bool {
	return r.FireAt(name, TargetAny)
}

// FireAt records one pass through the named point by the given target and
// reports whether the fault fires: a rule matches when it is armed for this
// exact target or for TargetAny. Every matching rule counts the hit and
// consults its policy; the pass fires if any of them fire.
func (r *Registry) FireAt(name string, target int) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	rules := r.points[name]
	if len(rules) == 0 {
		r.mu.Unlock()
		return false
	}
	fired := false
	for _, pt := range rules {
		if pt.target != TargetAny && pt.target != target {
			continue
		}
		pt.hits++
		if pt.policy(pt.hits, pt.rng) {
			pt.fired++
			fired = true
		}
	}
	obs := r.observer
	r.mu.Unlock()
	if fired && obs != nil {
		obs(name)
	}
	return fired
}

// Hits returns how many times the named point was passed while armed,
// summed over every rule on it.
func (r *Registry) Hits(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, pt := range r.points[name] {
		total += pt.hits
	}
	return total
}

// Fired returns how many of those passes fired the fault, summed over every
// rule on the point.
func (r *Registry) Fired(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, pt := range r.points[name] {
		total += pt.fired
	}
	return total
}

// StatusAt returns one rule's counters: how many passes matched it and how
// many fired. Zero for unarmed pairs and nil registries.
func (r *Registry) StatusAt(name string, target int) (hits, fired uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, pt := range r.points[name] {
		if pt.target == target {
			return pt.hits, pt.fired
		}
	}
	return 0, 0
}

// PointStatus is one armed rule's introspection record: the point name, the
// target it is scoped to (TargetAny = every pass), a human-readable policy
// label, and its hit/fired counters.
type PointStatus struct {
	Name   string `json:"name"`
	Target int    `json:"target"` // -1 = any
	Policy string `json:"policy"`
	Hits   uint64 `json:"hits"`
	Fired  uint64 `json:"fired"`
}

// Points returns every armed rule's status, sorted by point name then
// target — the registry's live introspection surface, folded into the
// admin /stats snapshot. Nil registries return nil.
func (r *Registry) Points() []PointStatus {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []PointStatus
	for name, rules := range r.points {
		for _, pt := range rules {
			out = append(out, PointStatus{
				Name:   name,
				Target: pt.target,
				Policy: pt.desc,
				Hits:   pt.hits,
				Fired:  pt.fired,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// String summarizes the armed rules, for test failure messages.
func (r *Registry) String() string {
	if r == nil {
		return "fault.Registry(nil)"
	}
	s := "fault.Registry{"
	for i, p := range r.Points() {
		if i > 0 {
			s += ", "
		}
		if p.Target == TargetAny {
			s += fmt.Sprintf("%s: %d/%d", p.Name, p.Fired, p.Hits)
		} else {
			s += fmt.Sprintf("%s@%d: %d/%d", p.Name, p.Target, p.Fired, p.Hits)
		}
	}
	return s + "}"
}
