// Package fault is a deterministic, seedable fault-injection registry for
// the simulated machine. Components declare named injection points (frame
// allocation, NVM writes, syscall entry, message transport) and consult the
// registry on every pass through them; tests enable a point with a trigger
// policy — fire on the Nth hit, fire with a seeded probability, fire always —
// and the component turns the firing into its layer's failure mode: a failed
// allocation, a torn write, an abrupt process death, a lost message.
//
// Registries are per-test-scoped by construction: each Registry is an
// independent value, so one test's faults can never leak into another's.
// Determinism is per-point: every enabled point draws from its own RNG seeded
// from the registry seed and the point name, so the firing pattern of one
// point does not depend on how many times other points were hit.
//
// All methods are safe on a nil *Registry (they report "no fault"), so
// components can hold an optional registry and consult it unconditionally.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// Well-known injection point names. Components define the failure semantics;
// the registry only decides *when* a pass through the point fails.
const (
	// MemAlloc fails a physical frame allocation in mem.PhysMem.AllocFrames
	// with an out-of-memory error.
	MemAlloc = "mem.alloc"
	// MemWriteTorn tears a mem.PhysMem.WriteAt in half: only a prefix of
	// the buffer reaches memory before the simulated power cut. This is how
	// a checkpoint write is interrupted mid-flight.
	MemWriteTorn = "mem.write.torn"
	// CoreSyscallCrash kills the calling process abruptly at syscall entry:
	// no lock release, no detach — the kernel reaper has to clean up.
	CoreSyscallCrash = "core.syscall.crash"
	// URPCDrop loses a urpc channel message in transit: the sender is
	// charged for the send but the message never arrives.
	URPCDrop = "urpc.drop"
	// URPCDelay charges the receiving core extra cycles on a delivery,
	// modelling a delayed cache-line transfer.
	URPCDelay = "urpc.delay"
	// SrvAccept fails an accepted connection before it is served: the
	// server closes it immediately, as a listener hitting EMFILE would.
	SrvAccept = "server.accept"
	// SrvConnStall pauses a connection's reader briefly before the next
	// command, modelling a slow or half-stuck client link.
	SrvConnStall = "server.conn.stall"
	// SrvConnDrop severs a connection mid-command stream: the server
	// closes the socket without a reply, as a network partition would.
	SrvConnDrop = "server.conn.drop"
	// ClusterProbeDrop loses a cluster health probe before it is sent: the
	// monitor counts a failed probe without the node ever seeing it, the
	// way an interconnect partition looks from the prober's side.
	ClusterProbeDrop = "cluster.probe.drop"
	// ClusterNodeCrash kills a shard node's process abruptly at urpc
	// handler entry: the request goes unanswered, the kernel reaper
	// reclaims the node, and only its replicated store state survives.
	ClusterNodeCrash = "cluster.node.crash"
)

// A Policy decides whether the hit'th pass (1-based) through a point fires.
// rng is the point's private deterministic source.
type Policy func(hit uint64, rng *rand.Rand) bool

// OnNth fires exactly on the nth hit (1-based) and never again.
func OnNth(n uint64) Policy {
	return func(hit uint64, _ *rand.Rand) bool { return hit == n }
}

// FromNth fires on the nth hit and on every hit after it.
func FromNth(n uint64) Policy {
	return func(hit uint64, _ *rand.Rand) bool { return hit >= n }
}

// Always fires on every hit.
func Always() Policy {
	return func(uint64, *rand.Rand) bool { return true }
}

// Probability fires each hit independently with probability p, drawn from
// the point's seeded RNG — the same registry seed replays the same pattern.
func Probability(p float64) Policy {
	return func(_ uint64, rng *rand.Rand) bool { return rng.Float64() < p }
}

// point is one enabled injection point.
type point struct {
	policy Policy
	rng    *rand.Rand
	hits   uint64
	fired  uint64
}

// Registry holds the enabled injection points of one test scope.
type Registry struct {
	mu       sync.Mutex
	seed     int64
	points   map[string]*point
	observer func(name string)
}

// SetObserver installs a callback invoked (outside the registry lock) every
// time a point fires, letting an observability layer count and trace
// injected faults. A nil callback disables observation.
func (r *Registry) SetObserver(fn func(name string)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = fn
}

// New creates a registry. The seed determines every probabilistic policy's
// firing pattern.
func New(seed int64) *Registry {
	return &Registry{seed: seed, points: map[string]*point{}}
}

// pointSeed mixes the registry seed with the point name, giving each point
// an independent deterministic stream.
func pointSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Enable arms a point with a policy, resetting its hit and fired counters.
func (r *Registry) Enable(name string, p Policy) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[name] = &point{policy: p, rng: rand.New(rand.NewSource(pointSeed(r.seed, name)))}
}

// Disable disarms a point. Its counters are discarded.
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.points, name)
}

// Reset disarms every point — the per-test cleanup when a registry is shared
// across subtests.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points = map[string]*point{}
}

// Fire records one pass through the named point and reports whether the
// fault fires. Unarmed points (and nil registries) never fire.
func (r *Registry) Fire(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	pt, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return false
	}
	pt.hits++
	fired := pt.policy(pt.hits, pt.rng)
	if fired {
		pt.fired++
	}
	obs := r.observer
	r.mu.Unlock()
	if fired && obs != nil {
		obs(name)
	}
	return fired
}

// Hits returns how many times the named point was passed while armed.
func (r *Registry) Hits(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if pt, ok := r.points[name]; ok {
		return pt.hits
	}
	return 0
}

// Fired returns how many of those passes fired the fault.
func (r *Registry) Fired(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if pt, ok := r.points[name]; ok {
		return pt.fired
	}
	return 0
}

// String summarizes the armed points, for test failure messages.
func (r *Registry) String() string {
	if r == nil {
		return "fault.Registry(nil)"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.points))
	for n := range r.points {
		names = append(names, n)
	}
	sort.Strings(names)
	s := "fault.Registry{"
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		pt := r.points[n]
		s += fmt.Sprintf("%s: %d/%d", n, pt.fired, pt.hits)
	}
	return s + "}"
}
