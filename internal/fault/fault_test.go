package fault

import "testing"

func TestNilRegistryNeverFires(t *testing.T) {
	var r *Registry
	r.Enable(MemAlloc, Always()) // must not panic
	if r.Fire(MemAlloc) {
		t.Error("nil registry fired")
	}
	if r.Hits(MemAlloc) != 0 || r.Fired(MemAlloc) != 0 {
		t.Error("nil registry counted")
	}
	r.Disable(MemAlloc)
	r.Reset()
}

func TestUnarmedPointNeverFires(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Fire(MemAlloc) {
			t.Fatal("unarmed point fired")
		}
	}
	if r.Hits(MemAlloc) != 0 {
		t.Error("unarmed point counted hits")
	}
}

func TestOnNthFiresExactlyOnce(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, OnNth(3))
	var fired []int
	for i := 1; i <= 10; i++ {
		if r.Fire(MemAlloc) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("OnNth(3) fired at %v", fired)
	}
	if r.Hits(MemAlloc) != 10 || r.Fired(MemAlloc) != 1 {
		t.Errorf("counters = %d hits, %d fired", r.Hits(MemAlloc), r.Fired(MemAlloc))
	}
}

func TestFromNthFiresFromThenOn(t *testing.T) {
	r := New(1)
	r.Enable(URPCDrop, FromNth(4))
	for i := 1; i <= 6; i++ {
		want := i >= 4
		if got := r.Fire(URPCDrop); got != want {
			t.Errorf("hit %d: fired = %v, want %v", i, got, want)
		}
	}
}

func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := New(seed)
		r.Enable(URPCDrop, Probability(0.5))
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Fire(URPCDrop)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit patterns")
	}
}

func TestPointStreamsAreIndependent(t *testing.T) {
	// The firing pattern of one point must not shift when another point is
	// hit in between — each point has its own seeded stream.
	solo := New(3)
	solo.Enable(URPCDrop, Probability(0.5))
	var a []bool
	for i := 0; i < 32; i++ {
		a = append(a, solo.Fire(URPCDrop))
	}

	mixed := New(3)
	mixed.Enable(URPCDrop, Probability(0.5))
	mixed.Enable(MemAlloc, Probability(0.5))
	var b []bool
	for i := 0; i < 32; i++ {
		mixed.Fire(MemAlloc) // interleaved traffic on another point
		b = append(b, mixed.Fire(URPCDrop))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving another point shifted the pattern at hit %d", i)
		}
	}
}

func TestEnableResetsCounters(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, Always())
	r.Fire(MemAlloc)
	r.Enable(MemAlloc, OnNth(1))
	if r.Hits(MemAlloc) != 0 {
		t.Error("re-Enable kept stale hit count")
	}
	if !r.Fire(MemAlloc) {
		t.Error("re-armed OnNth(1) did not fire on first hit")
	}
}

func TestDisableAndReset(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, Always())
	r.Enable(URPCDrop, Always())
	r.Disable(MemAlloc)
	if r.Fire(MemAlloc) {
		t.Error("disabled point fired")
	}
	r.Reset()
	if r.Fire(URPCDrop) {
		t.Error("reset registry fired")
	}
}
