package fault

import "testing"

func TestNilRegistryNeverFires(t *testing.T) {
	var r *Registry
	r.Enable(MemAlloc, Always()) // must not panic
	if r.Fire(MemAlloc) {
		t.Error("nil registry fired")
	}
	if r.Hits(MemAlloc) != 0 || r.Fired(MemAlloc) != 0 {
		t.Error("nil registry counted")
	}
	r.Disable(MemAlloc)
	r.Reset()
}

func TestUnarmedPointNeverFires(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Fire(MemAlloc) {
			t.Fatal("unarmed point fired")
		}
	}
	if r.Hits(MemAlloc) != 0 {
		t.Error("unarmed point counted hits")
	}
}

func TestOnNthFiresExactlyOnce(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, OnNth(3))
	var fired []int
	for i := 1; i <= 10; i++ {
		if r.Fire(MemAlloc) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("OnNth(3) fired at %v", fired)
	}
	if r.Hits(MemAlloc) != 10 || r.Fired(MemAlloc) != 1 {
		t.Errorf("counters = %d hits, %d fired", r.Hits(MemAlloc), r.Fired(MemAlloc))
	}
}

func TestFromNthFiresFromThenOn(t *testing.T) {
	r := New(1)
	r.Enable(URPCDrop, FromNth(4))
	for i := 1; i <= 6; i++ {
		want := i >= 4
		if got := r.Fire(URPCDrop); got != want {
			t.Errorf("hit %d: fired = %v, want %v", i, got, want)
		}
	}
}

func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := New(seed)
		r.Enable(URPCDrop, Probability(0.5))
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Fire(URPCDrop)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit patterns")
	}
}

func TestPointStreamsAreIndependent(t *testing.T) {
	// The firing pattern of one point must not shift when another point is
	// hit in between — each point has its own seeded stream.
	solo := New(3)
	solo.Enable(URPCDrop, Probability(0.5))
	var a []bool
	for i := 0; i < 32; i++ {
		a = append(a, solo.Fire(URPCDrop))
	}

	mixed := New(3)
	mixed.Enable(URPCDrop, Probability(0.5))
	mixed.Enable(MemAlloc, Probability(0.5))
	var b []bool
	for i := 0; i < 32; i++ {
		mixed.Fire(MemAlloc) // interleaved traffic on another point
		b = append(b, mixed.Fire(URPCDrop))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving another point shifted the pattern at hit %d", i)
		}
	}
}

func TestEnableResetsCounters(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, Always())
	r.Fire(MemAlloc)
	r.Enable(MemAlloc, OnNth(1))
	if r.Hits(MemAlloc) != 0 {
		t.Error("re-Enable kept stale hit count")
	}
	if !r.Fire(MemAlloc) {
		t.Error("re-armed OnNth(1) did not fire on first hit")
	}
}

func TestDisableAndReset(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, Always())
	r.Enable(URPCDrop, Always())
	r.Disable(MemAlloc)
	if r.Fire(MemAlloc) {
		t.Error("disabled point fired")
	}
	r.Reset()
	if r.Fire(URPCDrop) {
		t.Error("reset registry fired")
	}
}

func TestEveryNth(t *testing.T) {
	r := New(1)
	r.Enable(MemAlloc, EveryNth(3))
	var fired []int
	for i := 1; i <= 9; i++ {
		if r.Fire(MemAlloc) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Errorf("EveryNth(3) fired at %v", fired)
	}
	r.Enable(URPCDrop, EveryNth(0))
	if !r.Fire(URPCDrop) || !r.Fire(URPCDrop) {
		t.Error("EveryNth(0) must fire on every hit")
	}
}

func TestTargetedRuleOnlyMatchesItsTarget(t *testing.T) {
	r := New(1)
	r.EnableAt(ClusterNodeCrash, 2, "always", Always())
	if r.FireAt(ClusterNodeCrash, 1) {
		t.Error("rule for target 2 fired on target 1")
	}
	if r.Fire(ClusterNodeCrash) {
		t.Error("rule for target 2 fired on an untargeted pass")
	}
	if !r.FireAt(ClusterNodeCrash, 2) {
		t.Error("rule for target 2 did not fire on target 2")
	}
	hits, fired := r.StatusAt(ClusterNodeCrash, 2)
	if hits != 1 || fired != 1 {
		t.Errorf("StatusAt = %d hits, %d fired, want 1, 1", hits, fired)
	}
}

func TestWildcardRuleMatchesEveryTarget(t *testing.T) {
	r := New(1)
	r.Enable(ClusterProbeDrop, Always())
	if !r.FireAt(ClusterProbeDrop, 0) || !r.FireAt(ClusterProbeDrop, 7) {
		t.Error("TargetAny rule must match every target")
	}
	if r.Hits(ClusterProbeDrop) != 2 {
		t.Errorf("Hits = %d, want 2", r.Hits(ClusterProbeDrop))
	}
}

func TestPerTargetRulesAreIndependent(t *testing.T) {
	r := New(1)
	r.EnableAt(ClusterNodeCrash, 1, "on-nth", OnNth(1))
	r.EnableAt(ClusterNodeCrash, 2, "on-nth", OnNth(1))
	if !r.FireAt(ClusterNodeCrash, 1) {
		t.Error("target 1 rule did not fire")
	}
	// Target 2's OnNth(1) must still see hit 1: counters are per rule.
	if !r.FireAt(ClusterNodeCrash, 2) {
		t.Error("target 2 rule consumed target 1's hits")
	}
	r.DisableAt(ClusterNodeCrash, 1)
	if r.FireAt(ClusterNodeCrash, 1) {
		t.Error("disabled target still fired")
	}
	if _, ok := r.StatusAt(ClusterNodeCrash, 2); ok != 1 {
		t.Error("DisableAt(1) disturbed target 2's rule")
	}
}

func TestPointsIntrospection(t *testing.T) {
	r := New(1)
	r.EnableAt(ClusterNodeCrash, 2, "always", Always())
	r.Enable(URPCDrop, Probability(0.5))
	r.FireAt(ClusterNodeCrash, 2)
	pts := r.Points()
	if len(pts) != 2 {
		t.Fatalf("Points() returned %d rules, want 2", len(pts))
	}
	// Sorted by name then target: cluster.node.crash before urpc.drop.
	if pts[0].Name != ClusterNodeCrash || pts[0].Target != 2 ||
		pts[0].Policy != "always" || pts[0].Hits != 1 || pts[0].Fired != 1 {
		t.Errorf("first rule = %+v", pts[0])
	}
	if pts[1].Name != URPCDrop || pts[1].Target != TargetAny {
		t.Errorf("second rule = %+v", pts[1])
	}
	var nilReg *Registry
	if nilReg.Points() != nil {
		t.Error("nil registry Points() must be nil")
	}
}

func TestTargetStreamsAreIndependent(t *testing.T) {
	// Two probabilistic rules on the same point but different targets must
	// draw from distinct seeded streams.
	r := New(5)
	r.EnableAt(URPCDelay, 1, "p=0.5", Probability(0.5))
	r.EnableAt(URPCDelay, 2, "p=0.5", Probability(0.5))
	same := true
	for i := 0; i < 64; i++ {
		if r.FireAt(URPCDelay, 1) != r.FireAt(URPCDelay, 2) {
			same = false
		}
	}
	if same {
		t.Error("different targets produced identical 64-hit patterns")
	}
}
