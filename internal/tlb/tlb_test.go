package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spacejmp/internal/arch"
)

func small() *TLB { return New(Config{Sets: 4, Ways: 2}) }

func TestHitAfterInsert(t *testing.T) {
	tl := small()
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRW, false)
	e, ok := tl.Lookup(1, 0x1234)
	if !ok {
		t.Fatal("miss after insert")
	}
	if e.Frame != 0x9000 {
		t.Errorf("frame = %v", e.Frame)
	}
	if e.Perm != arch.PermRW {
		t.Errorf("perm = %v", e.Perm)
	}
}

func TestMissDifferentASID(t *testing.T) {
	tl := small()
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRW, false)
	if _, ok := tl.Lookup(2, 0x1000); ok {
		t.Error("hit under wrong ASID; tags must isolate address spaces")
	}
}

func TestGlobalMatchesAnyASID(t *testing.T) {
	tl := small()
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRead, true)
	if _, ok := tl.Lookup(7, 0x1000); !ok {
		t.Error("global entry missed under other ASID")
	}
}

func TestHugePageLookup(t *testing.T) {
	tl := small()
	tl.Insert(1, arch.HugePageSize, 0x200000, arch.HugePageSize, arch.PermRW, false)
	e, ok := tl.Lookup(1, arch.HugePageSize+0x12345)
	if !ok {
		t.Fatal("huge page lookup missed")
	}
	if e.PageSize != arch.HugePageSize {
		t.Errorf("page size = %d", e.PageSize)
	}
}

func TestFlushAllKeepsGlobal(t *testing.T) {
	tl := small()
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRW, false)
	tl.Insert(1, 0x2000, 0xA000, arch.PageSize, arch.PermRW, true)
	tl.FlushAll()
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Error("non-global entry survived flush")
	}
	if _, ok := tl.Lookup(1, 0x2000); !ok {
		t.Error("global entry flushed")
	}
	if tl.Stats().Flushes != 1 || tl.Stats().FlushedEntries != 1 {
		t.Errorf("flush stats = %+v", tl.Stats())
	}
}

func TestFlushASID(t *testing.T) {
	tl := small()
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRW, false)
	tl.Insert(2, 0x1000, 0xB000, arch.PageSize, arch.PermRW, false)
	tl.FlushASID(1)
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Error("ASID 1 entry survived its flush")
	}
	if _, ok := tl.Lookup(2, 0x1000); !ok {
		t.Error("ASID 2 entry flushed by ASID 1 invalidation")
	}
}

func TestFlushPage(t *testing.T) {
	tl := small()
	tl.Insert(3, 0x1000, 0x9000, arch.PageSize, arch.PermRW, false)
	tl.Insert(3, 0x2000, 0xA000, arch.PageSize, arch.PermRW, false)
	tl.FlushPage(3, 0x1abc)
	if _, ok := tl.Lookup(3, 0x1000); ok {
		t.Error("flushed page still hits")
	}
	if _, ok := tl.Lookup(3, 0x2000); !ok {
		t.Error("unrelated page flushed")
	}
}

func TestSameASIDDistinctEntries(t *testing.T) {
	// Two address spaces can map the same VPN to different frames under
	// different tags and both must be retrievable.
	tl := New(Config{Sets: 8, Ways: 4})
	tl.Insert(1, 0x1000, 0x111000, arch.PageSize, arch.PermRW, false)
	tl.Insert(2, 0x1000, 0x222000, arch.PageSize, arch.PermRW, false)
	e1, ok1 := tl.Lookup(1, 0x1000)
	e2, ok2 := tl.Lookup(2, 0x1000)
	if !ok1 || !ok2 {
		t.Fatal("tagged aliases evicted each other in a non-full set")
	}
	if e1.Frame != 0x111000 || e2.Frame != 0x222000 {
		t.Errorf("frames = %v, %v", e1.Frame, e2.Frame)
	}
}

func TestReinsertRefreshesInPlace(t *testing.T) {
	tl := small()
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRead, false)
	tl.Insert(1, 0x1000, 0x9000, arch.PageSize, arch.PermRW, false)
	if tl.Live() != 1 {
		t.Errorf("reinsert duplicated the entry: %d live", tl.Live())
	}
	e, _ := tl.Lookup(1, 0x1000)
	if e.Perm != arch.PermRW {
		t.Errorf("reinsert did not update perms: %v", e.Perm)
	}
	if tl.Stats().Evictions != 0 {
		t.Error("reinsert counted as eviction")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(Config{Sets: 1, Ways: 2})
	tl.Insert(1, 0x1000, 0x1000, arch.PageSize, arch.PermRW, false)
	tl.Insert(1, 0x2000, 0x2000, arch.PageSize, arch.PermRW, false)
	tl.Lookup(1, 0x1000) // make 0x2000 the LRU
	tl.Insert(1, 0x3000, 0x3000, arch.PageSize, arch.PermRW, false)
	if _, ok := tl.Lookup(1, 0x1000); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := tl.Lookup(1, 0x2000); ok {
		t.Error("LRU entry survived")
	}
	if tl.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", tl.Stats().Evictions)
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// Touching a working set within capacity gives 100% hits on re-touch;
	// a working set 2x capacity under an adversarial-free access pattern
	// cannot (this is the Figure 6 "tail off" mechanism).
	tl := New(Config{Sets: 16, Ways: 4})
	n := tl.Capacity()
	for i := 0; i < n; i++ {
		tl.Insert(1, arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(i*arch.PageSize), arch.PageSize, arch.PermRW, false)
	}
	tl.ResetStats()
	for i := 0; i < n; i++ {
		if _, ok := tl.Lookup(1, arch.VirtAddr(i*arch.PageSize)); !ok {
			t.Fatalf("entry %d missing with working set == capacity", i)
		}
	}
	if s := tl.Stats(); s.Misses != 0 {
		t.Errorf("misses with in-capacity working set = %d", s.Misses)
	}
}

func TestPropertyLiveNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := New(Config{Sets: 8, Ways: 2})
		for i := 0; i < 500; i++ {
			va := arch.VirtAddr(uint64(rng.Intn(256)) * arch.PageSize)
			tl.Insert(arch.ASID(rng.Intn(4)), va, arch.PhysAddr(va), arch.PageSize, arch.PermRW, rng.Intn(8) == 0)
			if tl.Live() > tl.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLookupAfterInsertAlwaysHits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := New(DefaultConfig)
		va := arch.VirtAddr(uint64(rng.Intn(1<<20)) * arch.PageSize)
		asid := arch.ASID(rng.Intn(100))
		tl.Insert(asid, va, arch.PhysAddr(va)+0x1000, arch.PageSize, arch.PermRead, false)
		e, ok := tl.Lookup(asid, va+arch.VirtAddr(rng.Intn(arch.PageSize)))
		return ok && e.Frame == arch.PhysAddr(va)+0x1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{Sets: 0, Ways: 1}, {Sets: 3, Ways: 1}, {Sets: 4, Ways: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
