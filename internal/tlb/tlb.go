// Package tlb simulates a set-associative, tagged translation lookaside
// buffer. Entries carry an ASID (a 12-bit PCID, paper §4.4); loading CR3
// with the reserved flush tag invalidates all non-global entries, while
// switching between tagged address spaces retains translations — the
// mechanism behind the paper's Figure 6 and the tagged rows of Table 2.
package tlb

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
)

// Config sizes the TLB. Entries = Sets * Ways.
type Config struct {
	Sets int // power of two
	Ways int
}

// DefaultConfig models a modern unified L2 TLB: 128 sets x 12 ways = 1536
// entries (Haswell-era STLB, matching the paper's M3 machine).
var DefaultConfig = Config{Sets: 128, Ways: 12}

// Entry is one cached translation.
type Entry struct {
	VPN      uint64 // virtual page number (va / PageSize of the page base)
	ASID     arch.ASID
	Frame    arch.PhysAddr // physical base of the page
	Perm     arch.Perm
	PageSize uint64
	Global   bool

	valid bool
	used  uint64 // LRU timestamp
}

// Stats counts TLB activity.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	Flushes        uint64
	FlushedEntries uint64
}

// TLB is a single-level, set-associative translation cache. A core's TLB
// is mostly touched by that core's own goroutine, but shootdown IPIs
// (vm.Space.Shootdown) flush entries from whichever goroutine removed the
// translation — the mutex is the interconnect that serializes them.
type TLB struct {
	mu    sync.Mutex
	cfg   Config
	sets  [][]Entry
	tick  uint64
	stats Stats
}

// New creates a TLB with the given geometry.
func New(cfg Config) *TLB {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("tlb: sets must be a positive power of two, got %d", cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("tlb: ways must be positive, got %d", cfg.Ways))
	}
	t := &TLB{cfg: cfg, sets: make([][]Entry, cfg.Sets)}
	for i := range t.sets {
		t.sets[i] = make([]Entry, cfg.Ways)
	}
	return t
}

// Capacity returns the number of entries the TLB can hold.
func (t *TLB) Capacity() int { return t.cfg.Sets * t.cfg.Ways }

// Stats returns a snapshot of the activity counters.
func (t *TLB) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// ResetStats clears the activity counters (entries are kept).
func (t *TLB) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = Stats{}
}

func (t *TLB) setFor(vpn uint64) []Entry {
	return t.sets[vpn&uint64(t.cfg.Sets-1)]
}

// pageSizes are probed from smallest to largest on lookup, emulating a
// unified TLB that caches all three page sizes.
var pageSizes = [...]uint64{arch.PageSize, arch.HugePageSize, arch.GiantPageSize}

// Lookup probes the TLB for a translation of va under the given ASID.
// Global entries match any ASID. On a hit the entry's LRU stamp is renewed.
func (t *TLB) Lookup(asid arch.ASID, va arch.VirtAddr) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tick++
	for _, ps := range pageSizes {
		base := arch.AlignDown(va, ps)
		vpn := uint64(base) >> arch.PageShift
		set := t.setFor(vpn)
		for i := range set {
			e := &set[i]
			if e.valid && e.PageSize == ps && e.VPN == vpn && (e.Global || e.ASID == asid) {
				e.used = t.tick
				t.stats.Hits++
				return *e, true
			}
		}
	}
	t.stats.Misses++
	return Entry{}, false
}

// Insert installs a translation, evicting the least recently used entry of
// the target set if it is full. The entry's VPN is derived from its page
// base, so callers pass the base virtual address of the page. It returns
// the ASID of the entry it displaced and whether an eviction happened, so
// the MMU can attribute the eviction to the victim's address space.
func (t *TLB) Insert(asid arch.ASID, base arch.VirtAddr, frame arch.PhysAddr, pageSize uint64, perm arch.Perm, global bool) (victimASID arch.ASID, evicted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tick++
	vpn := uint64(arch.AlignDown(base, pageSize)) >> arch.PageShift
	set := t.setFor(vpn)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.PageSize == pageSize && e.VPN == vpn && e.ASID == asid {
			victim = i // refresh in place
			break
		}
		if !e.valid {
			victim = i
			break
		}
		if e.used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && (set[victim].VPN != vpn || set[victim].ASID != asid) {
		t.stats.Evictions++
		victimASID, evicted = set[victim].ASID, true
	}
	set[victim] = Entry{
		VPN: vpn, ASID: asid, Frame: arch.PhysAddr(arch.AlignDown(arch.VirtAddr(frame), pageSize)),
		Perm: perm, PageSize: pageSize, Global: global, valid: true, used: t.tick,
	}
	return victimASID, evicted
}

// FlushAll invalidates every non-global entry — the effect of writing CR3
// without a tag (or with the reserved flush tag). It returns the number of
// entries invalidated.
func (t *TLB) FlushAll() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Flushes++
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid && !set[i].Global {
				set[i].valid = false
				t.stats.FlushedEntries++
				n++
			}
		}
	}
	return n
}

// FlushASID invalidates every entry tagged with the given ASID (INVPCID)
// and returns the number of entries invalidated.
func (t *TLB) FlushASID(asid arch.ASID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Flushes++
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid && set[i].ASID == asid {
				set[i].valid = false
				t.stats.FlushedEntries++
				n++
			}
		}
	}
	return n
}

// FlushPage invalidates the translation of the page containing va for the
// given ASID at every page size (INVLPG) and returns the number of entries
// invalidated.
func (t *TLB) FlushPage(asid arch.ASID, va arch.VirtAddr) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ps := range pageSizes {
		vpn := uint64(arch.AlignDown(va, ps)) >> arch.PageShift
		set := t.setFor(vpn)
		for i := range set {
			e := &set[i]
			if e.valid && e.PageSize == ps && e.VPN == vpn && e.ASID == asid {
				e.valid = false
				t.stats.FlushedEntries++
				n++
			}
		}
	}
	return n
}

// Live returns the number of valid entries (for tests and introspection).
func (t *TLB) Live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
