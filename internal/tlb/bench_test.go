package tlb

import (
	"testing"

	"spacejmp/internal/arch"
)

func BenchmarkLookupHit(b *testing.B) {
	tl := New(DefaultConfig)
	for i := 0; i < 512; i++ {
		tl.Insert(1, arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(i*arch.PageSize), arch.PageSize, arch.PermRW, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(1, arch.VirtAddr((i%512)*arch.PageSize))
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	tl := New(DefaultConfig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(1, arch.VirtAddr(i*arch.PageSize))
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	tl := New(Config{Sets: 16, Ways: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Insert(1, arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(i*arch.PageSize), arch.PageSize, arch.PermRW, false)
	}
}

func BenchmarkFlushAll(b *testing.B) {
	tl := New(DefaultConfig)
	for i := 0; i < tl.Capacity(); i++ {
		tl.Insert(1, arch.VirtAddr(i*arch.PageSize), arch.PhysAddr(i*arch.PageSize), arch.PageSize, arch.PermRW, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.FlushAll()
	}
}
