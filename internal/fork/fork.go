// Package fork manages frozen copy-on-write views of shard stores — the
// subsystem behind non-blocking checkpoint shipping and bounded-staleness
// follower reads.
//
// A fork clones a node's live data segment via core.SegForkFrozen: the
// frozen view owns the segment's frames at the instant of the fork, the
// live segment becomes a copy-on-write child of it, and writers resume
// immediately (their first store per page faults and breaks COW into a
// private frame). The frozen view is attached read-only into its own VAS,
// so image extraction and follower reads proceed with no lock on the live
// store and no node mutex held.
//
// Views are generation-fenced: every fork gets a monotonically increasing
// generation, a promotion or slot migration invalidates a node's
// outstanding views, and readers must re-check validity after attaching.
// Released views return every private COW frame to the allocator
// (vm.Object.CollapseCOW) — the leak-check contract verified through the
// physical-memory reaper.
package fork

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/stats"
	"spacejmp/internal/vm"
)

// View is one immutable frozen fork of a node's live store segment.
type View struct {
	node      int
	gen       uint64
	segName   string // "<live-seg>@fork<gen>"
	vasName   string
	vid       core.VASID
	sid       core.SegID
	liveObj   *vm.Object // the live segment's object, now a COW child of the frozen one
	createdAt time.Time
	invalid   atomic.Bool
}

// Node returns the shard node the view was forked from.
func (v *View) Node() int { return v.node }

// Gen returns the view's fork generation — the fencing token readers and
// the ship path compare against the engine's current generation.
func (v *View) Gen() uint64 { return v.gen }

// SegName returns the frozen segment's registry name.
func (v *View) SegName() string { return v.segName }

// VID returns the frozen VAS readers attach to serve from the view.
func (v *View) VID() core.VASID { return v.vid }

// CreatedAt returns when the fork was taken — the reference point for
// staleness bounds.
func (v *View) CreatedAt() time.Time { return v.createdAt }

// Age returns how far behind the live store the view is.
func (v *View) Age() time.Duration { return time.Since(v.createdAt) }

// Invalid reports whether the view has been fenced off (superseded by a
// promotion or slot migration). Readers must re-check after attaching: a
// view that is still the node's current one cannot be released out from
// under an attachment.
func (v *View) Invalid() bool { return v.invalid.Load() }

// Engine tracks the current and retired frozen views of every shard node.
// Forks and releases are driven on the owning node's thread (the cluster
// holds the node mutex across Fork, which quiesces that node's writers for
// the instant of the frame swap); invalidation may come from any goroutine.
type Engine struct {
	sys *core.System
	obs *stats.Sink

	mu      sync.Mutex
	gen     uint64
	current map[int]*View
	retired map[int][]*View
}

// New creates an engine over sys reporting to obs (which may be nil).
func New(sys *core.System, obs *stats.Sink) *Engine {
	return &Engine{
		sys:     sys,
		obs:     obs,
		current: map[int]*View{},
		retired: map[int][]*View{},
	}
}

// Fork takes a new frozen view of node's live segment segName and publishes
// it as the node's current view, retiring (and, when no reader is attached,
// releasing) the predecessor. It must run on the node's own thread with the
// node's writers quiesced — the cluster calls it from the node's command
// handler under the node mutex. The mutex is needed only for the duration
// of this call; image extraction happens later, lock-free, via Image.
func (e *Engine) Fork(th *core.Thread, node int, segName string) (*View, error) {
	sid, err := th.SegFind(segName)
	if err != nil {
		return nil, err
	}
	seg, err := e.sys.SegByID(sid)
	if err != nil {
		return nil, err
	}
	liveObj := seg.Obj

	e.mu.Lock()
	e.gen++
	gen := e.gen
	e.mu.Unlock()

	frozenName := fmt.Sprintf("%s@fork%d", segName, gen)
	fsid, err := th.SegForkFrozen(sid, frozenName)
	if err != nil {
		return nil, err
	}
	vid, err := th.VASCreate(frozenName+".vas", 0o666)
	if err != nil {
		_ = th.SegFree(fsid)
		liveObj.CollapseCOW()
		return nil, err
	}
	if err := th.SegAttachVAS(vid, fsid, arch.PermRead); err != nil {
		_ = th.VASDestroy(vid)
		_ = th.SegFree(fsid)
		liveObj.CollapseCOW()
		return nil, err
	}

	v := &View{
		node: node, gen: gen, segName: frozenName, vasName: frozenName + ".vas",
		vid: vid, sid: fsid, liveObj: liveObj, createdAt: time.Now(),
	}

	e.mu.Lock()
	if prev := e.current[node]; prev != nil {
		e.retired[node] = append(e.retired[node], prev)
	}
	e.current[node] = v
	e.sweepLocked(th, node)
	e.mu.Unlock()

	e.obs.ClusterFork(node, gen)
	return v, nil
}

// Current returns node's current valid view, or nil when the node has no
// view or its view has been invalidated. Safe on a nil engine (replication
// disabled).
func (e *Engine) Current(node int) *View {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.current[node]
	if v == nil || v.invalid.Load() {
		return nil
	}
	return v
}

// Image extracts the frozen view's segment content. It takes no thread and
// no node mutex — the frames are immutable by construction, so the primary
// keeps serving while the image is read. Fails if the view was invalidated
// (its frames may already be reclaimed).
func (e *Engine) Image(v *View) (*core.SegmentImage, error) {
	if v.invalid.Load() {
		return nil, fmt.Errorf("%w: fork gen %d of node %d invalidated", core.ErrInvalid, v.gen, v.node)
	}
	return e.sys.SegmentImageOf(v.segName, v.gen)
}

// InvalidateNode fences every outstanding view of node: a promotion or slot
// migration makes frozen views of the old primary semantically stale in a
// way no staleness bound covers, so readers must stop trusting them
// immediately. Views are retired, not released — readers may still hold
// attachments; their frames are reclaimed at the next sweep or at Close.
// Safe on a nil engine.
func (e *Engine) InvalidateNode(node int, reason string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	views := uint64(0)
	if v := e.current[node]; v != nil {
		if !v.invalid.Swap(true) {
			views++
		}
		e.retired[node] = append(e.retired[node], v)
		delete(e.current, node)
	}
	for _, v := range e.retired[node] {
		if !v.invalid.Swap(true) {
			views++
		}
	}
	e.mu.Unlock()
	if views > 0 {
		e.obs.ClusterForkInvalidate(node, views, reason)
	}
}

// sweepLocked releases node's retired views that no reader is attached to.
// Views still attached stay retired for the next sweep; the release path's
// VASDestroy refuses (ErrBusy) while attachments exist, so a reader that
// attached between the generation flip and the sweep is never pulled out
// from under. Caller holds e.mu.
func (e *Engine) sweepLocked(th *core.Thread, node int) {
	kept := e.retired[node][:0]
	for _, v := range e.retired[node] {
		if err := e.releaseView(th, v); err != nil {
			kept = append(kept, v)
		}
	}
	e.retired[node] = kept
}

// releaseView reclaims one retired view: destroy the frozen VAS (refused
// while attached — the fencing guarantee), free the frozen segment (its
// frames return to the allocator), then collapse the live object's COW
// chain so private frames of intermediate generations are freed too.
func (e *Engine) releaseView(th *core.Thread, v *View) error {
	if err := th.VASDestroy(v.vid); err != nil {
		return err
	}
	if err := th.SegFree(v.sid); err != nil {
		return err
	}
	v.liveObj.CollapseCOW()
	e.obs.ClusterForkRelease(v.node, v.gen)
	return nil
}

// Close force-releases every view, current and retired, on the given
// (admin) thread — node threads may be dead after crash injection. Callers
// must have quiesced readers first (the cluster closes workers before the
// engine); a view still attached is reported, not leaked silently.
func (e *Engine) Close(th *core.Thread) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var errs error
	for node, v := range e.current {
		v.invalid.Store(true)
		e.retired[node] = append(e.retired[node], v)
	}
	e.current = map[int]*View{}
	for node, views := range e.retired {
		for _, v := range views {
			if err := e.releaseView(th, v); err != nil {
				errs = errors.Join(errs, fmt.Errorf("fork: releasing node %d gen %d: %w", node, v.gen, err))
			}
		}
	}
	e.retired = map[int][]*View{}
	return errs
}
