// Package mspace is the SpaceJMP runtime library's heap allocator (paper
// §4.1): a dlmalloc-style boundary-tag allocator whose entire state — bin
// heads, chunk headers, free-list links — lives inside the segment it
// manages, addressed by virtual addresses of the owning VAS.
//
// Because the state is in segment memory rather than process memory, an
// mspace created by one process is directly usable by the next process that
// switches into the VAS: pointers keep their meaning across process
// lifetimes, which is exactly the property SAMTools exploits (§5.4).
//
// All metadata accesses go through an Accessor (typically a core.Thread),
// so they traverse the simulated MMU of the currently active address space.
package mspace

import (
	"errors"
	"fmt"
	"math/bits"

	"spacejmp/internal/arch"
)

// Accessor reads and writes 64-bit words of the active virtual address
// space. core.Thread satisfies it.
type Accessor interface {
	Load64(va arch.VirtAddr) (uint64, error)
	Store64(va arch.VirtAddr, v uint64) error
}

const (
	magic = 0x4d53504143453031 // "MSPACE01"

	numBins    = 64
	headerSize = 8 + 8 + 8 + numBins*8 // magic, size, allocated, bins
	headerPad  = (headerSize + 15) &^ 15

	chunkOverhead = 8  // size/flags word
	minChunk      = 32 // header + fd + bk + footer

	flagInUse    = 1 << 0
	flagPrevFree = 1 << 1
	flagMask     = flagInUse | flagPrevFree
)

// Errors returned by the allocator.
var (
	ErrCorrupt = errors.New("mspace: heap corrupt")
	ErrNoSpace = errors.New("mspace: out of memory")
	ErrBadFree = errors.New("mspace: bad free")
)

// Space is a handle to an mspace. The handle itself carries no heap state —
// only where the heap lives — so any process may construct one over the
// same segment.
type Space struct {
	mem  Accessor
	base arch.VirtAddr
	size uint64
}

// Word offsets inside the header.
const (
	offMagic = 0
	offSize  = 8
	offAlloc = 16
	offBins  = 24
)

func (s *Space) load(va arch.VirtAddr) uint64 {
	v, err := s.mem.Load64(va)
	if err != nil {
		panic(fmt.Sprintf("mspace: load %v: %v", va, err))
	}
	return v
}

func (s *Space) store(va arch.VirtAddr, v uint64) {
	if err := s.mem.Store64(va, v); err != nil {
		panic(fmt.Sprintf("mspace: store %v: %v", va, err))
	}
}

// guard converts internal panics (raised on inaccessible memory, e.g. when
// the wrong VAS is active) into errors.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrCorrupt, r)
	}
}

// Init formats a new mspace over [base, base+size) and returns its handle.
// The range must be mapped writable in the active address space.
func Init(mem Accessor, base arch.VirtAddr, size uint64) (sp *Space, err error) {
	defer guard(&err)
	if base&15 != 0 {
		return nil, fmt.Errorf("mspace: base %v not 16-byte aligned", base)
	}
	if size < headerPad+minChunk+chunkOverhead {
		return nil, fmt.Errorf("mspace: %d bytes too small for an mspace", size)
	}
	size &^= 15
	s := &Space{mem: mem, base: base, size: size}
	s.store(base+offSize, size)
	s.store(base+offAlloc, 0)
	for i := 0; i < numBins; i++ {
		s.store(base+offBins+arch.VirtAddr(i*8), 0)
	}
	// One big free chunk followed by the end sentinel (an in-use header).
	first := base + headerPad
	sentinel := base + arch.VirtAddr(size) - chunkOverhead
	chunkSize := uint64(sentinel - first)
	s.setChunk(first, chunkSize, false, false)
	s.store(sentinel, chunkOverhead|flagInUse|flagPrevFree)
	s.binInsert(first, chunkSize)
	s.store(base+offMagic, magic)
	return s, nil
}

// Open attaches to an existing mspace at base (created by Init, possibly by
// another process in an earlier lifetime).
func Open(mem Accessor, base arch.VirtAddr) (sp *Space, err error) {
	defer guard(&err)
	s := &Space{mem: mem, base: base}
	if s.load(base+offMagic) != magic {
		return nil, fmt.Errorf("%w: no mspace at %v", ErrCorrupt, base)
	}
	s.size = s.load(base + offSize)
	return s, nil
}

// Base returns the mspace's base address.
func (s *Space) Base() arch.VirtAddr { return s.base }

// Size returns the mspace's total size.
func (s *Space) Size() uint64 { return s.size }

// Allocated returns the number of payload-plus-overhead bytes in use.
func (s *Space) Allocated() (n uint64, err error) {
	defer guard(&err)
	return s.load(s.base + offAlloc), nil
}

// --- chunk primitives ---

// header returns (size, inUse, prevFree) of the chunk at va.
func (s *Space) header(c arch.VirtAddr) (uint64, bool, bool) {
	h := s.load(c)
	return h &^ flagMask, h&flagInUse != 0, h&flagPrevFree != 0
}

// setChunk writes a chunk header (and footer + next's prevFree bit when the
// chunk is free).
func (s *Space) setChunk(c arch.VirtAddr, size uint64, inUse, prevFree bool) {
	h := size
	if inUse {
		h |= flagInUse
	}
	if prevFree {
		h |= flagPrevFree
	}
	s.store(c, h)
	next := c + arch.VirtAddr(size)
	if !inUse {
		s.store(next-8, size) // footer
		nh := s.load(next)
		s.store(next, nh|flagPrevFree)
	} else if next < s.end() {
		nh := s.load(next)
		s.store(next, nh&^flagPrevFree)
	}
}

func (s *Space) end() arch.VirtAddr { return s.base + arch.VirtAddr(s.size) }

// free chunk list links.
func (s *Space) fd(c arch.VirtAddr) arch.VirtAddr { return arch.VirtAddr(s.load(c + 8)) }
func (s *Space) bk(c arch.VirtAddr) arch.VirtAddr { return arch.VirtAddr(s.load(c + 16)) }
func (s *Space) setFd(c, v arch.VirtAddr)         { s.store(c+8, uint64(v)) }
func (s *Space) setBk(c, v arch.VirtAddr)         { s.store(c+16, uint64(v)) }

// binFor maps a chunk size to a segregated bin: linear 32-byte classes up
// to 1 KiB, logarithmic beyond.
func binFor(size uint64) int {
	if size < 1024 {
		return int(size / 32) // bins 1..31
	}
	b := 22 + bits.Len64(size) // 1024 -> bin 33
	if b >= numBins {
		b = numBins - 1
	}
	return b
}

func (s *Space) binHead(b int) arch.VirtAddr {
	return arch.VirtAddr(s.load(s.base + offBins + arch.VirtAddr(b*8)))
}

func (s *Space) setBinHead(b int, c arch.VirtAddr) {
	s.store(s.base+offBins+arch.VirtAddr(b*8), uint64(c))
}

// binInsert pushes a free chunk onto its bin's list.
func (s *Space) binInsert(c arch.VirtAddr, size uint64) {
	b := binFor(size)
	head := s.binHead(b)
	s.setFd(c, head)
	s.setBk(c, 0)
	if head != 0 {
		s.setBk(head, c)
	}
	s.setBinHead(b, c)
}

// binRemove unlinks a free chunk from its bin's list.
func (s *Space) binRemove(c arch.VirtAddr, size uint64) {
	b := binFor(size)
	fd, bk := s.fd(c), s.bk(c)
	if bk == 0 {
		s.setBinHead(b, fd)
	} else {
		s.setFd(bk, fd)
	}
	if fd != 0 {
		s.setBk(fd, bk)
	}
}

// Alloc returns the address of a payload of at least n bytes.
func (s *Space) Alloc(n uint64) (va arch.VirtAddr, err error) {
	defer guard(&err)
	if n == 0 {
		n = 1
	}
	need := (n + chunkOverhead + 15) &^ 15
	if need < minChunk {
		need = minChunk
	}
	for b := binFor(need); b < numBins; b++ {
		for c := s.binHead(b); c != 0; c = s.fd(c) {
			size, inUse, _ := s.header(c)
			if inUse {
				return 0, fmt.Errorf("%w: in-use chunk on free list at %v", ErrCorrupt, c)
			}
			if size < need {
				continue
			}
			s.binRemove(c, size)
			_, _, prevFree := s.header(c)
			if size-need >= minChunk {
				// Split: tail remains free.
				tail := c + arch.VirtAddr(need)
				s.setChunk(c, need, true, prevFree)
				s.setChunk(tail, size-need, false, false)
				s.binInsert(tail, size-need)
				size = need
			} else {
				s.setChunk(c, size, true, prevFree)
			}
			s.store(s.base+offAlloc, s.load(s.base+offAlloc)+size)
			return c + chunkOverhead, nil
		}
	}
	return 0, fmt.Errorf("%w: no chunk of %d bytes", ErrNoSpace, need)
}

// UsableSize returns the payload capacity of an allocation.
func (s *Space) UsableSize(va arch.VirtAddr) (n uint64, err error) {
	defer guard(&err)
	c := va - chunkOverhead
	size, inUse, _ := s.header(c)
	if !inUse || !s.contains(c, size) {
		return 0, fmt.Errorf("%w: %v is not an allocation", ErrBadFree, va)
	}
	return size - chunkOverhead, nil
}

func (s *Space) contains(c arch.VirtAddr, size uint64) bool {
	return c >= s.base+headerPad && c+arch.VirtAddr(size) <= s.end() && size >= minChunk
}

// Free releases an allocation, coalescing with free neighbours.
func (s *Space) Free(va arch.VirtAddr) (err error) {
	defer guard(&err)
	c := va - chunkOverhead
	size, inUse, prevFree := s.header(c)
	if !inUse || !s.contains(c, size) {
		return fmt.Errorf("%w: %v", ErrBadFree, va)
	}
	s.store(s.base+offAlloc, s.load(s.base+offAlloc)-size)
	// Coalesce backwards.
	if prevFree {
		prevSize := s.load(c - 8)
		prev := c - arch.VirtAddr(prevSize)
		s.binRemove(prev, prevSize)
		c = prev
		size += prevSize
	}
	// Coalesce forwards.
	next := c + arch.VirtAddr(size)
	if next < s.end() {
		nsize, nInUse, _ := s.header(next)
		if !nInUse {
			s.binRemove(next, nsize)
			size += nsize
		}
	}
	s.setChunk(c, size, false, false)
	s.binInsert(c, size)
	return nil
}

// Realloc grows or shrinks an allocation, copying through the accessor.
func (s *Space) Realloc(va arch.VirtAddr, n uint64) (out arch.VirtAddr, err error) {
	defer guard(&err)
	old, err := s.UsableSize(va)
	if err != nil {
		return 0, err
	}
	if n <= old {
		return va, nil
	}
	nva, err := s.Alloc(n)
	if err != nil {
		return 0, err
	}
	for off := uint64(0); off < old; off += 8 {
		s.store(nva+arch.VirtAddr(off), s.load(va+arch.VirtAddr(off)))
	}
	if err := s.Free(va); err != nil {
		return 0, err
	}
	return nva, nil
}

// Check walks the whole heap and verifies the boundary-tag invariants:
// chunks tile the arena exactly, free neighbours are always coalesced, all
// free chunks are on the correct bin, and the allocated counter matches.
func (s *Space) Check() (err error) {
	defer guard(&err)
	if s.load(s.base+offMagic) != magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	free := map[arch.VirtAddr]uint64{}
	var allocated uint64
	prevWasFree := false
	c := s.base + headerPad
	for c < s.end()-chunkOverhead {
		size, inUse, prevFree := s.header(c)
		if size < minChunk || c+arch.VirtAddr(size) > s.end() {
			return fmt.Errorf("%w: bad chunk size %d at %v", ErrCorrupt, size, c)
		}
		if prevFree != prevWasFree {
			return fmt.Errorf("%w: prevFree flag wrong at %v", ErrCorrupt, c)
		}
		if !inUse {
			if prevWasFree {
				return fmt.Errorf("%w: adjacent free chunks at %v", ErrCorrupt, c)
			}
			if s.load(c+arch.VirtAddr(size)-8) != size {
				return fmt.Errorf("%w: footer mismatch at %v", ErrCorrupt, c)
			}
			free[c] = size
		} else {
			allocated += size
		}
		prevWasFree = !inUse
		c += arch.VirtAddr(size)
	}
	if c != s.end()-chunkOverhead {
		return fmt.Errorf("%w: chunks do not tile the arena (ended at %v)", ErrCorrupt, c)
	}
	if got := s.load(s.base + offAlloc); got != allocated {
		return fmt.Errorf("%w: allocated counter %d, walked %d", ErrCorrupt, got, allocated)
	}
	// Every free chunk must be reachable from exactly its bin.
	seen := map[arch.VirtAddr]bool{}
	for b := 0; b < numBins; b++ {
		for f := s.binHead(b); f != 0; f = s.fd(f) {
			size, ok := free[f]
			if !ok {
				return fmt.Errorf("%w: bin %d links non-free chunk %v", ErrCorrupt, b, f)
			}
			if binFor(size) != b {
				return fmt.Errorf("%w: chunk %v (size %d) in wrong bin %d", ErrCorrupt, f, size, b)
			}
			if seen[f] {
				return fmt.Errorf("%w: chunk %v on multiple lists", ErrCorrupt, f)
			}
			seen[f] = true
		}
	}
	if len(seen) != len(free) {
		return fmt.Errorf("%w: %d free chunks, %d binned", ErrCorrupt, len(free), len(seen))
	}
	return nil
}
