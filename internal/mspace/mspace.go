// Package mspace is the SpaceJMP runtime library's heap allocator (paper
// §4.1): a dlmalloc-style boundary-tag allocator whose entire state — bin
// heads, chunk headers, free-list links — lives inside the segment it
// manages, addressed by virtual addresses of the owning VAS.
//
// Because the state is in segment memory rather than process memory, an
// mspace created by one process is directly usable by the next process that
// switches into the VAS: pointers keep their meaning across process
// lifetimes, which is exactly the property SAMTools exploits (§5.4).
//
// All metadata accesses go through an Accessor (typically a core.Thread),
// so they traverse the simulated MMU of the currently active address space.
// An access that faults (wrong VAS active, unmapped range, dead process) is
// reported as an ErrCorrupt-wrapped error from the failing operation — the
// allocator never panics.
package mspace

import (
	"errors"
	"fmt"
	"math/bits"

	"spacejmp/internal/arch"
)

// Accessor reads and writes 64-bit words of the active virtual address
// space. core.Thread satisfies it.
type Accessor interface {
	Load64(va arch.VirtAddr) (uint64, error)
	Store64(va arch.VirtAddr, v uint64) error
}

const (
	magic = 0x4d53504143453031 // "MSPACE01"

	numBins    = 64
	headerSize = 8 + 8 + 8 + numBins*8 // magic, size, allocated, bins
	headerPad  = (headerSize + 15) &^ 15

	chunkOverhead = 8  // size/flags word
	minChunk      = 32 // header + fd + bk + footer

	flagInUse    = 1 << 0
	flagPrevFree = 1 << 1
	flagMask     = flagInUse | flagPrevFree
)

// Errors returned by the allocator.
var (
	ErrCorrupt = errors.New("mspace: heap corrupt")
	ErrNoSpace = errors.New("mspace: out of memory")
	ErrBadFree = errors.New("mspace: bad free")
)

// Space is a handle to an mspace. The handle itself carries no heap state —
// only where the heap lives — so any process may construct one over the
// same segment.
type Space struct {
	mem  Accessor
	base arch.VirtAddr
	size uint64
}

// Word offsets inside the header.
const (
	offMagic = 0
	offSize  = 8
	offAlloc = 16
	offBins  = 24
)

func (s *Space) load(va arch.VirtAddr) (uint64, error) {
	v, err := s.mem.Load64(va)
	if err != nil {
		return 0, fmt.Errorf("%w: load %v: %v", ErrCorrupt, va, err)
	}
	return v, nil
}

func (s *Space) store(va arch.VirtAddr, v uint64) error {
	if err := s.mem.Store64(va, v); err != nil {
		return fmt.Errorf("%w: store %v: %v", ErrCorrupt, va, err)
	}
	return nil
}

// Init formats a new mspace over [base, base+size) and returns its handle.
// The range must be mapped writable in the active address space.
func Init(mem Accessor, base arch.VirtAddr, size uint64) (*Space, error) {
	if base&15 != 0 {
		return nil, fmt.Errorf("mspace: base %v not 16-byte aligned", base)
	}
	if size < headerPad+minChunk+chunkOverhead {
		return nil, fmt.Errorf("mspace: %d bytes too small for an mspace", size)
	}
	size &^= 15
	s := &Space{mem: mem, base: base, size: size}
	if err := s.store(base+offSize, size); err != nil {
		return nil, err
	}
	if err := s.store(base+offAlloc, 0); err != nil {
		return nil, err
	}
	for i := 0; i < numBins; i++ {
		if err := s.store(base+offBins+arch.VirtAddr(i*8), 0); err != nil {
			return nil, err
		}
	}
	// One big free chunk followed by the end sentinel (an in-use header).
	first := base + headerPad
	sentinel := base + arch.VirtAddr(size) - chunkOverhead
	chunkSize := uint64(sentinel - first)
	if err := s.setChunk(first, chunkSize, false, false); err != nil {
		return nil, err
	}
	if err := s.store(sentinel, chunkOverhead|flagInUse|flagPrevFree); err != nil {
		return nil, err
	}
	if err := s.binInsert(first, chunkSize); err != nil {
		return nil, err
	}
	if err := s.store(base+offMagic, magic); err != nil {
		return nil, err
	}
	return s, nil
}

// Open attaches to an existing mspace at base (created by Init, possibly by
// another process in an earlier lifetime).
func Open(mem Accessor, base arch.VirtAddr) (*Space, error) {
	s := &Space{mem: mem, base: base}
	m, err := s.load(base + offMagic)
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("%w: no mspace at %v", ErrCorrupt, base)
	}
	if s.size, err = s.load(base + offSize); err != nil {
		return nil, err
	}
	return s, nil
}

// Base returns the mspace's base address.
func (s *Space) Base() arch.VirtAddr { return s.base }

// Size returns the mspace's total size.
func (s *Space) Size() uint64 { return s.size }

// Allocated returns the number of payload-plus-overhead bytes in use.
func (s *Space) Allocated() (uint64, error) {
	return s.load(s.base + offAlloc)
}

// --- chunk primitives ---

// header returns (size, inUse, prevFree) of the chunk at va.
func (s *Space) header(c arch.VirtAddr) (uint64, bool, bool, error) {
	h, err := s.load(c)
	if err != nil {
		return 0, false, false, err
	}
	return h &^ flagMask, h&flagInUse != 0, h&flagPrevFree != 0, nil
}

// setChunk writes a chunk header (and footer + next's prevFree bit when the
// chunk is free).
func (s *Space) setChunk(c arch.VirtAddr, size uint64, inUse, prevFree bool) error {
	h := size
	if inUse {
		h |= flagInUse
	}
	if prevFree {
		h |= flagPrevFree
	}
	if err := s.store(c, h); err != nil {
		return err
	}
	next := c + arch.VirtAddr(size)
	if !inUse {
		if err := s.store(next-8, size); err != nil { // footer
			return err
		}
		nh, err := s.load(next)
		if err != nil {
			return err
		}
		return s.store(next, nh|flagPrevFree)
	}
	if next < s.end() {
		nh, err := s.load(next)
		if err != nil {
			return err
		}
		return s.store(next, nh&^flagPrevFree)
	}
	return nil
}

func (s *Space) end() arch.VirtAddr { return s.base + arch.VirtAddr(s.size) }

// free chunk list links.
func (s *Space) fd(c arch.VirtAddr) (arch.VirtAddr, error) {
	v, err := s.load(c + 8)
	return arch.VirtAddr(v), err
}

func (s *Space) bk(c arch.VirtAddr) (arch.VirtAddr, error) {
	v, err := s.load(c + 16)
	return arch.VirtAddr(v), err
}

func (s *Space) setFd(c, v arch.VirtAddr) error { return s.store(c+8, uint64(v)) }
func (s *Space) setBk(c, v arch.VirtAddr) error { return s.store(c+16, uint64(v)) }

// binFor maps a chunk size to a segregated bin: linear 32-byte classes up
// to 1 KiB, logarithmic beyond.
func binFor(size uint64) int {
	if size < 1024 {
		return int(size / 32) // bins 1..31
	}
	b := 22 + bits.Len64(size) // 1024 -> bin 33
	if b >= numBins {
		b = numBins - 1
	}
	return b
}

func (s *Space) binHead(b int) (arch.VirtAddr, error) {
	v, err := s.load(s.base + offBins + arch.VirtAddr(b*8))
	return arch.VirtAddr(v), err
}

func (s *Space) setBinHead(b int, c arch.VirtAddr) error {
	return s.store(s.base+offBins+arch.VirtAddr(b*8), uint64(c))
}

// binInsert pushes a free chunk onto its bin's list.
func (s *Space) binInsert(c arch.VirtAddr, size uint64) error {
	b := binFor(size)
	head, err := s.binHead(b)
	if err != nil {
		return err
	}
	if err := s.setFd(c, head); err != nil {
		return err
	}
	if err := s.setBk(c, 0); err != nil {
		return err
	}
	if head != 0 {
		if err := s.setBk(head, c); err != nil {
			return err
		}
	}
	return s.setBinHead(b, c)
}

// binRemove unlinks a free chunk from its bin's list.
func (s *Space) binRemove(c arch.VirtAddr, size uint64) error {
	b := binFor(size)
	fd, err := s.fd(c)
	if err != nil {
		return err
	}
	bk, err := s.bk(c)
	if err != nil {
		return err
	}
	if bk == 0 {
		if err := s.setBinHead(b, fd); err != nil {
			return err
		}
	} else if err := s.setFd(bk, fd); err != nil {
		return err
	}
	if fd != 0 {
		return s.setBk(fd, bk)
	}
	return nil
}

// Alloc returns the address of a payload of at least n bytes.
func (s *Space) Alloc(n uint64) (arch.VirtAddr, error) {
	if n == 0 {
		n = 1
	}
	need := (n + chunkOverhead + 15) &^ 15
	if need < minChunk {
		need = minChunk
	}
	for b := binFor(need); b < numBins; b++ {
		c, err := s.binHead(b)
		if err != nil {
			return 0, err
		}
		for c != 0 {
			size, inUse, _, err := s.header(c)
			if err != nil {
				return 0, err
			}
			if inUse {
				return 0, fmt.Errorf("%w: in-use chunk on free list at %v", ErrCorrupt, c)
			}
			if size < need {
				if c, err = s.fd(c); err != nil {
					return 0, err
				}
				continue
			}
			if err := s.binRemove(c, size); err != nil {
				return 0, err
			}
			_, _, prevFree, err := s.header(c)
			if err != nil {
				return 0, err
			}
			if size-need >= minChunk {
				// Split: tail remains free.
				tail := c + arch.VirtAddr(need)
				if err := s.setChunk(c, need, true, prevFree); err != nil {
					return 0, err
				}
				if err := s.setChunk(tail, size-need, false, false); err != nil {
					return 0, err
				}
				if err := s.binInsert(tail, size-need); err != nil {
					return 0, err
				}
				size = need
			} else if err := s.setChunk(c, size, true, prevFree); err != nil {
				return 0, err
			}
			alloc, err := s.load(s.base + offAlloc)
			if err != nil {
				return 0, err
			}
			if err := s.store(s.base+offAlloc, alloc+size); err != nil {
				return 0, err
			}
			return c + chunkOverhead, nil
		}
	}
	return 0, fmt.Errorf("%w: no chunk of %d bytes", ErrNoSpace, need)
}

// UsableSize returns the payload capacity of an allocation.
func (s *Space) UsableSize(va arch.VirtAddr) (uint64, error) {
	c := va - chunkOverhead
	size, inUse, _, err := s.header(c)
	if err != nil {
		return 0, err
	}
	if !inUse || !s.contains(c, size) {
		return 0, fmt.Errorf("%w: %v is not an allocation", ErrBadFree, va)
	}
	return size - chunkOverhead, nil
}

func (s *Space) contains(c arch.VirtAddr, size uint64) bool {
	return c >= s.base+headerPad && c+arch.VirtAddr(size) <= s.end() && size >= minChunk
}

// Free releases an allocation, coalescing with free neighbours.
func (s *Space) Free(va arch.VirtAddr) error {
	c := va - chunkOverhead
	size, inUse, prevFree, err := s.header(c)
	if err != nil {
		return err
	}
	if !inUse || !s.contains(c, size) {
		return fmt.Errorf("%w: %v", ErrBadFree, va)
	}
	alloc, err := s.load(s.base + offAlloc)
	if err != nil {
		return err
	}
	if err := s.store(s.base+offAlloc, alloc-size); err != nil {
		return err
	}
	// Coalesce backwards.
	if prevFree {
		prevSize, err := s.load(c - 8)
		if err != nil {
			return err
		}
		prev := c - arch.VirtAddr(prevSize)
		if err := s.binRemove(prev, prevSize); err != nil {
			return err
		}
		c = prev
		size += prevSize
	}
	// Coalesce forwards.
	next := c + arch.VirtAddr(size)
	if next < s.end() {
		nsize, nInUse, _, err := s.header(next)
		if err != nil {
			return err
		}
		if !nInUse {
			if err := s.binRemove(next, nsize); err != nil {
				return err
			}
			size += nsize
		}
	}
	if err := s.setChunk(c, size, false, false); err != nil {
		return err
	}
	return s.binInsert(c, size)
}

// Realloc grows or shrinks an allocation, copying through the accessor.
func (s *Space) Realloc(va arch.VirtAddr, n uint64) (arch.VirtAddr, error) {
	old, err := s.UsableSize(va)
	if err != nil {
		return 0, err
	}
	if n <= old {
		return va, nil
	}
	nva, err := s.Alloc(n)
	if err != nil {
		return 0, err
	}
	for off := uint64(0); off < old; off += 8 {
		v, err := s.load(va + arch.VirtAddr(off))
		if err != nil {
			return 0, err
		}
		if err := s.store(nva+arch.VirtAddr(off), v); err != nil {
			return 0, err
		}
	}
	if err := s.Free(va); err != nil {
		return 0, err
	}
	return nva, nil
}

// Check walks the whole heap and verifies the boundary-tag invariants:
// chunks tile the arena exactly, free neighbours are always coalesced, all
// free chunks are on the correct bin, and the allocated counter matches.
func (s *Space) Check() error {
	m, err := s.load(s.base + offMagic)
	if err != nil {
		return err
	}
	if m != magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	free := map[arch.VirtAddr]uint64{}
	var allocated uint64
	prevWasFree := false
	c := s.base + headerPad
	for c < s.end()-chunkOverhead {
		size, inUse, prevFree, err := s.header(c)
		if err != nil {
			return err
		}
		if size < minChunk || c+arch.VirtAddr(size) > s.end() {
			return fmt.Errorf("%w: bad chunk size %d at %v", ErrCorrupt, size, c)
		}
		if prevFree != prevWasFree {
			return fmt.Errorf("%w: prevFree flag wrong at %v", ErrCorrupt, c)
		}
		if !inUse {
			if prevWasFree {
				return fmt.Errorf("%w: adjacent free chunks at %v", ErrCorrupt, c)
			}
			footer, err := s.load(c + arch.VirtAddr(size) - 8)
			if err != nil {
				return err
			}
			if footer != size {
				return fmt.Errorf("%w: footer mismatch at %v", ErrCorrupt, c)
			}
			free[c] = size
		} else {
			allocated += size
		}
		prevWasFree = !inUse
		c += arch.VirtAddr(size)
	}
	if c != s.end()-chunkOverhead {
		return fmt.Errorf("%w: chunks do not tile the arena (ended at %v)", ErrCorrupt, c)
	}
	got, err := s.load(s.base + offAlloc)
	if err != nil {
		return err
	}
	if got != allocated {
		return fmt.Errorf("%w: allocated counter %d, walked %d", ErrCorrupt, got, allocated)
	}
	// Every free chunk must be reachable from exactly its bin.
	seen := map[arch.VirtAddr]bool{}
	for b := 0; b < numBins; b++ {
		f, err := s.binHead(b)
		if err != nil {
			return err
		}
		for f != 0 {
			size, ok := free[f]
			if !ok {
				return fmt.Errorf("%w: bin %d links non-free chunk %v", ErrCorrupt, b, f)
			}
			if binFor(size) != b {
				return fmt.Errorf("%w: chunk %v (size %d) in wrong bin %d", ErrCorrupt, f, size, b)
			}
			if seen[f] {
				return fmt.Errorf("%w: chunk %v on multiple lists", ErrCorrupt, f)
			}
			seen[f] = true
			if f, err = s.fd(f); err != nil {
				return err
			}
		}
	}
	if len(seen) != len(free) {
		return fmt.Errorf("%w: %d free chunks, %d binned", ErrCorrupt, len(free), len(seen))
	}
	return nil
}
