package mspace

import (
	"testing"

	"spacejmp/internal/arch"
)

func BenchmarkAllocFree(b *testing.B) {
	s, err := Init(newFlat(), base, 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocChurn(b *testing.B) {
	s, err := Init(newFlat(), base, 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	var live [64]arch.VirtAddr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(live)
		if live[slot] != 0 {
			if err := s.Free(live[slot]); err != nil {
				b.Fatal(err)
			}
		}
		p, err := s.Alloc(uint64(16 + (i%32)*24))
		if err != nil {
			b.Fatal(err)
		}
		live[slot] = p
	}
}
