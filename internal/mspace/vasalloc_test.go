package mspace

import (
	"errors"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
)

// Integration: mspaces over real SpaceJMP segments, accessed through the
// simulated MMU of switching threads.

func setup(t *testing.T) (*core.System, *core.Thread) {
	t.Helper()
	sys := kernel.New(hw.NewMachine(hw.SmallTest()))
	p, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return sys, th
}

func makeVAS(t *testing.T, th *core.Thread, name string, segSize uint64) (core.VASID, core.Handle, arch.VirtAddr) {
	t.Helper()
	vid, err := th.VASCreate(name, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := th.SegAlloc(name+".heap", core.GlobalBase, segSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid, sid, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h, err := th.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	return vid, h, core.GlobalBase
}

func TestMallocInsideVAS(t *testing.T) {
	_, th := setup(t)
	_, h, segBase := makeVAS(t, th, "heapvas", 1<<20)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	alloc := NewVASAllocator(th)
	if _, err := alloc.InitHeap(h, segBase, 1<<20); err != nil {
		t.Fatal(err)
	}
	// The Figure 4 idiom: t = malloc(...); *t = 42.
	p, err := alloc.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(p, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(p); v != 42 {
		t.Errorf("*t = %d", v)
	}
	if err := alloc.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestMallocDispatchesByActiveVAS(t *testing.T) {
	_, th := setup(t)
	_, h1, b1 := makeVAS(t, th, "vas1", 1<<20)
	vid2, err := th.VASCreate("vas2", 0o666)
	if err != nil {
		t.Fatal(err)
	}
	base2 := core.GlobalBase + arch.VirtAddr(arch.LevelCoverage(3))
	sid2, err := th.SegAlloc("vas2.heap", base2, 1<<20, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SegAttachVAS(vid2, sid2, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	h2, err := th.VASAttach(vid2)
	if err != nil {
		t.Fatal(err)
	}

	alloc := NewVASAllocator(th)
	if err := th.VASSwitch(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.InitHeap(h1, b1, 1<<20); err != nil {
		t.Fatal(err)
	}
	p1, err := alloc.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.InitHeap(h2, base2, 1<<20); err != nil {
		t.Fatal(err)
	}
	p2, err := alloc.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Allocations came from the segment of whichever VAS was active.
	if !(p1 >= b1 && p1 < b1+1<<20) {
		t.Errorf("p1 = %v outside vas1 heap", p1)
	}
	if !(p2 >= base2 && p2 < base2+1<<20) {
		t.Errorf("p2 = %v outside vas2 heap", p2)
	}
	// Freeing vas1's pointer while in vas2 is refused.
	if err := alloc.Free(p1); !errors.Is(err, ErrBadFree) {
		t.Errorf("cross-VAS free: %v", err)
	}
	if err := th.VASSwitch(h1); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Free(p1); err != nil {
		t.Errorf("home-VAS free: %v", err)
	}
}

func TestHeapSurvivesProcessLifetime(t *testing.T) {
	sys, th := setup(t)
	_, h, segBase := makeVAS(t, th, "persist", 1<<20)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	alloc := NewVASAllocator(th)
	sp, err := alloc.InitHeap(h, segBase, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Build a linked list of three nodes with raw pointers.
	var head arch.VirtAddr
	for i := 3; i >= 1; i-- {
		n, err := sp.Alloc(16)
		if err != nil {
			t.Fatal(err)
		}
		th.Store64(n, uint64(i*100)) // value
		th.Store64(n+8, uint64(head))
		head = n
	}
	// Park the head pointer in a root allocation the next process can
	// find again (its address is stable because the heap is deterministic
	// only within a run, so we stash the root VA through a fresh alloc).
	root, err := sp.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	th.Store64(root, uint64(head))
	if err := th.VASSwitch(core.PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	th.Proc.Exit()

	// Second process: attach, open the heap, walk the list via the same
	// virtual addresses — no serialization, no pointer swizzling.
	p2, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	vid, err := t2.VASFind("persist")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := t2.VASAttach(vid)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	alloc2 := NewVASAllocator(t2)
	if _, err := alloc2.OpenHeap(h2, segBase); err != nil {
		t.Fatal(err)
	}
	cur, _ := t2.Load64(root)
	want := uint64(100)
	for cur != 0 {
		v, err := t2.Load64(arch.VirtAddr(cur))
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("node = %d, want %d", v, want)
		}
		next, _ := t2.Load64(arch.VirtAddr(cur) + 8)
		cur = next
		want += 100
	}
	if want != 400 {
		t.Errorf("walked %d nodes", (want-100)/100)
	}
	// And the heap still allocates correctly.
	if _, err := alloc2.Malloc(128); err != nil {
		t.Error(err)
	}
}

func TestInitHeapRequiresBeingSwitchedIn(t *testing.T) {
	_, th := setup(t)
	_, h, segBase := makeVAS(t, th, "strict", 1<<20)
	alloc := NewVASAllocator(th)
	if _, err := alloc.InitHeap(h, segBase, 1<<20); err == nil {
		t.Error("InitHeap without switching in succeeded")
	}
}

func TestMallocWithoutHeap(t *testing.T) {
	_, th := setup(t)
	alloc := NewVASAllocator(th)
	if _, err := alloc.Malloc(10); err == nil {
		t.Error("malloc with no registered heap succeeded")
	}
}
