package mspace

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spacejmp/internal/arch"
)

// flatMem is a plain in-process Accessor for unit tests (integration with
// the simulated MMU is tested in the runtime package).
type flatMem struct {
	words map[arch.VirtAddr]uint64
}

func newFlat() *flatMem { return &flatMem{words: map[arch.VirtAddr]uint64{}} }

func (m *flatMem) Load64(va arch.VirtAddr) (uint64, error) {
	if va&7 != 0 {
		return 0, errors.New("unaligned")
	}
	return m.words[va], nil
}

func (m *flatMem) Store64(va arch.VirtAddr, v uint64) error {
	if va&7 != 0 {
		return errors.New("unaligned")
	}
	m.words[va] = v
	return nil
}

const base arch.VirtAddr = 0x10000

func initSpace(t *testing.T, size uint64) *Space {
	t.Helper()
	s, err := Init(newFlat(), base, size)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInitAndCheck(t *testing.T) {
	s := initSpace(t, 1<<16)
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Allocated(); n != 0 {
		t.Errorf("fresh mspace allocated = %d", n)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	s := initSpace(t, 1<<16)
	p, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p&15 != 8 && p&15 != 0 {
		// payload starts 8 past a 16-aligned chunk
		t.Errorf("payload %v misaligned", p)
	}
	if u, _ := s.UsableSize(p); u < 100 {
		t.Errorf("usable = %d", u)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Allocated(); n != 0 {
		t.Errorf("allocated after free = %d", n)
	}
}

func TestWriteReadPayload(t *testing.T) {
	s := initSpace(t, 1<<16)
	m := s.mem
	p, _ := s.Alloc(64)
	q, _ := s.Alloc(64)
	for i := 0; i < 8; i++ {
		m.Store64(p+arch.VirtAddr(i*8), uint64(100+i))
		m.Store64(q+arch.VirtAddr(i*8), uint64(200+i))
	}
	for i := 0; i < 8; i++ {
		if v, _ := m.Load64(p + arch.VirtAddr(i*8)); v != uint64(100+i) {
			t.Errorf("p[%d] = %d", i, v)
		}
		if v, _ := m.Load64(q + arch.VirtAddr(i*8)); v != uint64(200+i) {
			t.Errorf("q[%d] = %d", i, v)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	s := initSpace(t, 4096)
	var ptrs []arch.VirtAddr
	for {
		p, err := s.Alloc(128)
		if err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("wrong error: %v", err)
			}
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) < 20 {
		t.Fatalf("only %d allocations from 4 KiB", len(ptrs))
	}
	for _, p := range ptrs {
		if err := s.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, a large allocation must succeed again
	// (proves full coalescing).
	if _, err := s.Alloc(3000); err != nil {
		t.Errorf("no large chunk after full free: %v", err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	s := initSpace(t, 1<<14)
	p, _ := s.Alloc(64)
	if err := s.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
	if err := s.Free(base + 12345); err == nil {
		t.Error("wild free accepted")
	}
}

func TestRealloc(t *testing.T) {
	s := initSpace(t, 1<<16)
	m := s.mem
	p, _ := s.Alloc(64)
	for i := 0; i < 8; i++ {
		m.Store64(p+arch.VirtAddr(i*8), uint64(i+1))
	}
	q, err := s.Realloc(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if v, _ := m.Load64(q + arch.VirtAddr(i*8)); v != uint64(i+1) {
			t.Errorf("content lost at %d: %d", i, v)
		}
	}
	// Shrinking realloc returns the same pointer.
	r, err := s.Realloc(q, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r != q {
		t.Error("shrinking realloc moved the allocation")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenExistingHeap(t *testing.T) {
	mem := newFlat()
	s1, err := Init(mem, base, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s1.Alloc(64)
	mem.Store64(p, 0xCAFE)

	// A "second process" opens the same memory: allocations and content
	// are visible, and the heap keeps working.
	s2, err := Open(mem, base)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := mem.Load64(p); v != 0xCAFE {
		t.Error("content lost across Open")
	}
	q, err := s2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Error("second process allocated over live data")
	}
	if err := s2.Free(p); err != nil {
		t.Errorf("second process cannot free first's allocation: %v", err)
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenGarbageRejected(t *testing.T) {
	if _, err := Open(newFlat(), base); !errors.Is(err, ErrCorrupt) {
		t.Errorf("open of unformatted memory: %v", err)
	}
}

func TestTooSmallRejected(t *testing.T) {
	if _, err := Init(newFlat(), base, 64); err == nil {
		t.Error("tiny mspace accepted")
	}
	if _, err := Init(newFlat(), base+4, 1<<16); err == nil {
		t.Error("misaligned base accepted")
	}
}

func TestPropertyHeapInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Init(newFlat(), base, 1<<15)
		if err != nil {
			return false
		}
		live := map[arch.VirtAddr]uint64{} // ptr -> stamp
		stamp := uint64(1)
		for step := 0; step < 400; step++ {
			if len(live) == 0 || rng.Intn(5) < 3 {
				n := uint64(rng.Intn(500) + 1)
				p, err := s.Alloc(n)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				// Stamp first word; verify on free (catches overlap).
				s.mem.Store64(p, stamp)
				live[p] = stamp
				stamp++
			} else {
				var p arch.VirtAddr
				for p = range live {
					break
				}
				if v, _ := s.mem.Load64(p); v != live[p] {
					return false // another allocation scribbled on us
				}
				if s.Free(p) != nil {
					return false
				}
				delete(live, p)
			}
		}
		return s.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinForMonotonicEnough(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = a%(1<<30)+32, b%(1<<30)+32
		if a > b {
			a, b = b, a
		}
		ba, bb := binFor(a), binFor(b)
		return ba >= 0 && bb < numBins && ba <= bb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
