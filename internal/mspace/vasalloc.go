package mspace

import (
	"fmt"
	"sync"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
)

// VASAllocator is the runtime library's malloc layer (paper §4.1): it keeps
// one mspace per (address space, segment) pair and dispatches Malloc and
// Free to the mspace of the currently active address space. Freeing memory
// that belongs to a segment not attached to the active address space is
// refused, mirroring the constraint the paper calls out.
type VASAllocator struct {
	th *core.Thread

	mu     sync.Mutex
	spaces map[core.Handle][]*Space
}

// NewVASAllocator wraps a thread.
func NewVASAllocator(th *core.Thread) *VASAllocator {
	return &VASAllocator{th: th, spaces: map[core.Handle][]*Space{}}
}

// InitHeap formats a new mspace over [base, base+size) inside the address
// space identified by h. The thread must currently be switched into h.
func (a *VASAllocator) InitHeap(h core.Handle, base arch.VirtAddr, size uint64) (*Space, error) {
	if a.th.Current() != h {
		return nil, fmt.Errorf("mspace: thread is in handle %d, not %d", a.th.Current(), h)
	}
	s, err := Init(a.th, base, size)
	if err != nil {
		return nil, err
	}
	a.register(h, s)
	return s, nil
}

// OpenHeap attaches to an existing mspace (created by an earlier process or
// another attachment of the same VAS).
func (a *VASAllocator) OpenHeap(h core.Handle, base arch.VirtAddr) (*Space, error) {
	if a.th.Current() != h {
		return nil, fmt.Errorf("mspace: thread is in handle %d, not %d", a.th.Current(), h)
	}
	s, err := Open(a.th, base)
	if err != nil {
		return nil, err
	}
	a.register(h, s)
	return s, nil
}

func (a *VASAllocator) register(h core.Handle, s *Space) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spaces[h] = append(a.spaces[h], s)
}

// Malloc allocates from a heap of the currently active address space,
// trying each registered mspace in order.
func (a *VASAllocator) Malloc(n uint64) (arch.VirtAddr, error) {
	h := a.th.Current()
	a.mu.Lock()
	spaces := append([]*Space(nil), a.spaces[h]...)
	a.mu.Unlock()
	if len(spaces) == 0 {
		return 0, fmt.Errorf("mspace: no heap registered for handle %d", h)
	}
	var lastErr error
	for _, s := range spaces {
		va, err := s.Alloc(n)
		if err == nil {
			return va, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

// Free releases va, which must belong to a heap of the currently active
// address space: "a call to free can only be executed by a process if it is
// currently in an address space which has the corresponding segment
// attached" (§4.1).
func (a *VASAllocator) Free(va arch.VirtAddr) error {
	h := a.th.Current()
	a.mu.Lock()
	spaces := append([]*Space(nil), a.spaces[h]...)
	a.mu.Unlock()
	for _, s := range spaces {
		if va >= s.Base() && va < s.Base()+arch.VirtAddr(s.Size()) {
			return s.Free(va)
		}
	}
	return fmt.Errorf("%w: %v belongs to no heap of the active address space (handle %d)", ErrBadFree, va, h)
}
