package redis

import (
	"fmt"

	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
)

// Figure 10 reproduction. Per-operation costs are measured by running real
// clients on simulated cores (actual VAS switches, MMU-mediated hash-table
// walks, modeled sockets); throughput across client counts then follows a
// closed-loop saturation model, because the paper runs up to 100 clients
// on a 12-core machine — more clients than cores — which a 1:1
// client-per-core simulation cannot express.

// Costs are measured per-operation cycle counts.
type Costs struct {
	JmpGet        float64 // RedisJMP client cycles per GET
	JmpSet        float64 // RedisJMP client cycles per SET
	JmpSetCS      float64 // cycles the exclusive lock is held per SET
	BaseClient    float64 // baseline client-side cycles per GET
	BaseServer    float64 // baseline server-side cycles per GET
	BaseSetServer float64 // baseline server-side cycles per SET
	GHz           float64
	Cores         int
}

// lockContention approximates cache-line ping-pong on the reader-writer
// lock word and the shared table's hot lines per additional *concurrently
// executing* client (capped at the core count) — the "synchronization
// overhead limits scalability" effect of §5.3 that keeps the paper's
// full-load RedisJMP only ~36% above six independent Redis instances.
const lockContention = 950.0

// lockHandoff models blocking writer-lock handoff between clients (futex
// style sleep/wake) once SETs contend, serializing more than the critical
// section alone.
const lockHandoff = 8000.0

// keyCount and valSize follow redis-benchmark defaults (4-byte payload).
const (
	keyCount = 1000
	valSize  = 4
)

func key(i int) string { return fmt.Sprintf("key:%06d", i%keyCount) }

// MeasureCosts boots a machine, runs real RedisJMP and baseline clients,
// and returns per-op costs. With tags enabled the VASes and client
// primaries are TLB-tagged.
func MeasureCosts(mcfg hw.MachineConfig, tags bool, segSize uint64) (Costs, error) {
	m := hw.NewMachine(mcfg)
	sys := kernel.New(m)
	if tags {
		sys.SetTagPrimaries(true)
	}
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		return Costs{}, err
	}
	th, err := proc.NewThread()
	if err != nil {
		return Costs{}, err
	}
	client, err := NewClient(th, segSize)
	if err != nil {
		return Costs{}, err
	}
	if tags {
		if err := client.EnableTags(); err != nil {
			return Costs{}, err
		}
	}
	// Preload the working set and warm the TLB/lock paths.
	val := make([]byte, valSize)
	for i := 0; i < keyCount; i++ {
		if err := client.Set(key(i), val); err != nil {
			return Costs{}, err
		}
	}
	const reps = 2000
	c := Costs{GHz: mcfg.GHz, Cores: mcfg.Sockets * mcfg.CoresPerSocket}

	before := th.Core.Cycles()
	for i := 0; i < reps; i++ {
		if _, ok, err := client.Get(key(i)); err != nil || !ok {
			return Costs{}, fmt.Errorf("measured GET failed: ok=%v err=%v", ok, err)
		}
	}
	c.JmpGet = float64(th.Core.Cycles()-before) / reps

	before = th.Core.Cycles()
	for i := 0; i < reps; i++ {
		if err := client.Set(key(i), val); err != nil {
			return Costs{}, err
		}
	}
	c.JmpSet = float64(th.Core.Cycles()-before) / reps
	// The exclusive section spans from lock acquisition (inside the
	// inbound switch) to release (inside the outbound switch): everything
	// but the client-local parse.
	c.JmpSetCS = c.JmpSet - parseCycles

	// Baseline: server pinned to the last core, client on another.
	server := NewBaselineServer(m.Cores[c.Cores-1])
	bc := NewBaselineClient(m.Cores[c.Cores-2], server)
	for i := 0; i < keyCount; i++ {
		if err := bc.Set(key(i), val); err != nil {
			return Costs{}, err
		}
	}
	clientBefore := bc.core.Cycles()
	serverBefore := server.core.Cycles()
	for i := 0; i < reps; i++ {
		if _, ok, err := bc.Get(key(i)); err != nil || !ok {
			return Costs{}, fmt.Errorf("baseline GET failed: ok=%v err=%v", ok, err)
		}
	}
	c.BaseServer = float64(server.core.Cycles()-serverBefore) / reps
	// The client's own work excludes the blocked-on-server portion.
	c.BaseClient = float64(bc.core.Cycles()-clientBefore)/reps - c.BaseServer

	serverBefore = server.core.Cycles()
	for i := 0; i < reps; i++ {
		if err := bc.Set(key(i), val); err != nil {
			return Costs{}, err
		}
	}
	c.BaseSetServer = float64(server.core.Cycles()-serverBefore) / reps
	return c, nil
}

// Point is one (clients, requests/second) sample of a Figure 10 series.
type Point struct {
	Clients int
	RPS     float64
}

func (c Costs) seconds(cycles float64) float64 { return cycles / (c.GHz * 1e9) }

// concurrent bounds the number of clients executing simultaneously.
func (c Costs) concurrent(k int) int {
	if k > c.Cores {
		return c.Cores
	}
	return k
}

// closedLoop returns the throughput of k closed-loop clients each paying
// perClient cycles of their own work per request, contending for a shared
// serial resource of serial cycles per request, with at most cores
// executing concurrently.
func (c Costs) closedLoop(k int, perClient, serial float64, cores int) float64 {
	if k <= 0 {
		return 0
	}
	perReq := perClient + serial
	concurrency := float64(k)
	if concurrency > float64(cores) {
		concurrency = float64(cores)
	}
	offered := concurrency / c.seconds(perReq)
	if serial > 0 {
		capX := 1 / c.seconds(serial)
		if offered > capX {
			return capX
		}
	}
	return offered
}

// GetSeries reproduces one Figure 10a curve for RedisJMP.
func (c Costs) GetSeries(clients []int) []Point {
	out := make([]Point, len(clients))
	for i, k := range clients {
		// Readers share the lock; contention grows with the number of
		// cores actually hammering it.
		perClient := c.JmpGet + lockContention*float64(c.concurrent(k)-1)
		out[i] = Point{k, c.closedLoop(k, perClient, 0, c.Cores)}
	}
	return out
}

// BaselineGetSeries reproduces Figure 10a's single-instance Redis curve.
// instances > 1 models the "Redis 6x" configuration (one server core per
// instance, clients spread across them).
func (c Costs) BaselineGetSeries(clients []int, instances int) []Point {
	out := make([]Point, len(clients))
	clientCores := c.Cores - instances
	if clientCores < 1 {
		clientCores = 1
	}
	for i, k := range clients {
		used := instances
		if k < instances {
			used = k
		}
		perInstance := (k + used - 1) / used
		x := c.closedLoop(perInstance, c.BaseClient, c.BaseServer, clientCores)
		out[i] = Point{k, x * float64(used)}
	}
	return out
}

// SetSeries reproduces Figure 10b: RedisJMP SETs serialized by the
// exclusive segment lock.
func (c Costs) SetSeries(clients []int) []Point {
	out := make([]Point, len(clients))
	for i, k := range clients {
		perClient := c.JmpSet - c.JmpSetCS // local parse work
		serial := c.JmpSetCS
		if k > 1 {
			serial += lockHandoff
		}
		out[i] = Point{k, c.closedLoop(k, perClient, serial+lockContention*float64(c.concurrent(k)-1), c.Cores)}
	}
	return out
}

// BaselineSetSeries is the baseline SET curve: server-serialized like GET
// but with the heavier mutation path.
func (c Costs) BaselineSetSeries(clients []int) []Point {
	out := make([]Point, len(clients))
	for i, k := range clients {
		out[i] = Point{k, c.closedLoop(k, c.BaseClient, c.BaseSetServer, c.Cores-1)}
	}
	return out
}

// MixSeries reproduces Figure 10c: total throughput at a fixed client
// count while the SET percentage sweeps 0–100.
func (c Costs) MixSeries(clients int, setPct []int) []Point {
	out := make([]Point, len(setPct))
	for i, pct := range setPct {
		p := float64(pct) / 100
		conc := float64(c.concurrent(clients) - 1)
		perClient := (1-p)*(c.JmpGet+lockContention*conc) + p*(c.JmpSet-c.JmpSetCS)
		handoff := 0.0
		if clients > 1 && p > 0 {
			handoff = lockHandoff
		}
		serial := p * (c.JmpSetCS + handoff + lockContention*conc)
		out[i] = Point{pct, c.closedLoop(clients, perClient, serial, c.Cores)}
	}
	return out
}

// BaselineMixSeries is Figure 10c's baseline curve: the single server
// serializes everything, with the per-request service time weighted by the
// SET share's heavier path.
func (c Costs) BaselineMixSeries(clients int, setPct []int) []Point {
	out := make([]Point, len(setPct))
	for i, pct := range setPct {
		p := float64(pct) / 100
		server := (1-p)*c.BaseServer + p*c.BaseSetServer
		out[i] = Point{pct, c.closedLoop(clients, c.BaseClient, server, c.Cores-1)}
	}
	return out
}
