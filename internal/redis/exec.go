package redis

import (
	"errors"
	"strings"
)

// Execute runs one already-parsed command against a client's store and
// renders the RESP reply. It is the single command table shared by every
// execution site: the serving layer's pool workers, the cluster's shard
// node handlers, and the router's co-resident fast path all dispatch
// through it, so a command behaves identically whether it was served
// locally over a VAS switch or remotely over urpc.
//
// A nil client serves only the store-less commands (PING, ECHO); data
// commands answer with an error reply.
func Execute(c *Client, args []string) []byte {
	if len(args) == 0 {
		return EncodeError("empty command")
	}
	name := strings.ToUpper(args[0])
	switch name {
	case "PING":
		if len(args) > 2 {
			return EncodeWrongArity(args[0])
		}
		if len(args) == 2 {
			return EncodeBulk([]byte(args[1]))
		}
		return EncodeSimple("PONG")
	case "ECHO":
		if len(args) != 2 {
			return EncodeWrongArity(args[0])
		}
		return EncodeBulk([]byte(args[1]))
	case "GET", "MGET", "SET", "DEL":
		if c == nil {
			return EncodeError("no store behind this handler")
		}
	default:
		return EncodeUnknownCommand(args[0])
	}
	switch name {
	case "GET":
		if len(args) != 2 {
			return EncodeWrongArity(args[0])
		}
		v, ok, err := c.Get(args[1])
		if err != nil {
			return EncodeError(err.Error())
		}
		if !ok {
			return EncodeBulk(nil)
		}
		return EncodeBulk(v)
	case "MGET":
		if len(args) < 2 {
			return EncodeWrongArity(args[0])
		}
		vals, err := c.MGet(args[1:])
		if err != nil {
			return EncodeError(err.Error())
		}
		return EncodeArray(vals)
	case "SET":
		if len(args) != 3 {
			return EncodeWrongArity(args[0])
		}
		if err := c.Set(args[1], []byte(args[2])); err != nil {
			if errors.Is(err, ErrStoreFull) {
				return EncodeError("OOM store segment full")
			}
			return EncodeError(err.Error())
		}
		return EncodeSimple("OK")
	case "DEL":
		if len(args) != 2 {
			return EncodeWrongArity(args[0])
		}
		found, err := c.Del(args[1])
		if err != nil {
			return EncodeError(err.Error())
		}
		if found {
			return EncodeInt(1)
		}
		return EncodeInt(0)
	default:
		return EncodeUnknownCommand(args[0])
	}
}
