package redis

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/mspace"
)

func TestRESPRoundTrip(t *testing.T) {
	cmd := EncodeCommand("SET", "key:1", "hello")
	args, err := DecodeCommand(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || args[0] != "SET" || args[2] != "hello" {
		t.Errorf("args = %v", args)
	}
	v, isNil, err := DecodeReply(EncodeBulk([]byte("world")))
	if err != nil || isNil || string(v) != "world" {
		t.Errorf("bulk reply: %q %v %v", v, isNil, err)
	}
	if _, isNil, _ := DecodeReply(EncodeBulk(nil)); !isNil {
		t.Error("null bulk not nil")
	}
	if _, _, err := DecodeReply(EncodeError("boom")); err == nil {
		t.Error("error reply not an error")
	}
	if v, _, err := DecodeReply(EncodeSimple("OK")); err != nil || string(v) != "OK" {
		t.Errorf("simple reply: %q %v", v, err)
	}
}

func TestRESPPropertyRoundTrip(t *testing.T) {
	f := func(parts []string) bool {
		if len(parts) == 0 {
			return true
		}
		for i := range parts {
			if len(parts[i]) > 64 {
				parts[i] = parts[i][:64]
			}
			// Bulk strings are length-prefixed: arbitrary bytes round-trip,
			// CR and LF included.
		}
		got, err := DecodeCommand(EncodeCommand(parts...))
		if err != nil || len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if got[i] != parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func newClient(t *testing.T) (*core.System, *Client) {
	t.Helper()
	sys := kernel.New(hw.NewMachine(hw.SmallTest()))
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(th, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	return sys, c
}

func TestJmpSetGet(t *testing.T) {
	_, c := newClient(t)
	if err := c.Set("hello", []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("hello")
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if string(v) != "world" {
		t.Errorf("value = %q", v)
	}
	if _, ok, err := c.Get("missing"); err != nil || ok {
		t.Errorf("missing key: %v %v", ok, err)
	}
}

func TestJmpOverwriteAndDelete(t *testing.T) {
	_, c := newClient(t)
	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v2-longer" {
		t.Errorf("after overwrite: %q", v)
	}
	found, err := c.Del("k")
	if err != nil || !found {
		t.Fatalf("del: %v %v", found, err)
	}
	if _, ok, _ := c.Get("k"); ok {
		t.Error("deleted key still present")
	}
	if found, _ := c.Del("k"); found {
		t.Error("double delete reported found")
	}
}

func TestSetStoreFullTypedError(t *testing.T) {
	sys := kernel.New(hw.NewMachine(hw.SmallTest()))
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(th, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("keep", []byte("safe")); err != nil {
		t.Fatal(err)
	}
	var full error
	for i := 0; i < 1024 && full == nil; i++ {
		full = c.Set(fmt.Sprintf("fill:%d", i), make([]byte, 4096))
	}
	if full == nil {
		t.Fatal("store never filled")
	}
	// The sentinel chain must hold across layers: redis → core → mspace.
	if !errors.Is(full, ErrStoreFull) {
		t.Errorf("errors.Is(err, ErrStoreFull) false: %v", full)
	}
	if !errors.Is(full, core.ErrNoSpace) {
		t.Errorf("errors.Is(err, core.ErrNoSpace) false: %v", full)
	}
	if !errors.Is(full, mspace.ErrNoSpace) {
		t.Errorf("errors.Is(err, mspace.ErrNoSpace) false: %v", full)
	}
	// The failed SET must have released the exclusive lock and switched
	// back out — the client stays usable.
	if th.Current() != core.PrimaryHandle {
		t.Error("thread stranded outside the primary space after full SET")
	}
	if v, ok, err := c.Get("keep"); err != nil || !ok || string(v) != "safe" {
		t.Errorf("store unusable after full SET: %q %v %v", v, ok, err)
	}
}

func TestTwoClientProcessesShareData(t *testing.T) {
	sys, c1 := newClient(t)
	if err := c1.Set("shared", []byte("data")); err != nil {
		t.Fatal(err)
	}
	proc2, err := sys.NewProcess(core.Creds{UID: 2, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	th2, err := proc2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(th2, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := c2.Get("shared")
	if err != nil || !ok {
		t.Fatalf("second client get: %v %v", ok, err)
	}
	if string(v) != "data" {
		t.Errorf("second client sees %q", v)
	}
}

func TestRehashUnderLoad(t *testing.T) {
	_, c := newClient(t)
	// Push well past 4x the initial 64 buckets to force rehashes.
	for i := 0; i < 600; i++ {
		if err := c.Set(fmt.Sprintf("key:%d", i), []byte(fmt.Sprintf("val:%d", i))); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	for i := 0; i < 600; i++ {
		v, ok, err := c.Get(fmt.Sprintf("key:%d", i))
		if err != nil || !ok {
			t.Fatalf("get %d after rehash: %v %v", i, ok, err)
		}
		if string(v) != fmt.Sprintf("val:%d", i) {
			t.Errorf("key %d = %q", i, v)
		}
	}
}

func TestStorePropertyAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := kernel.New(hw.NewMachine(hw.SmallTest()))
		proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
		if err != nil {
			return false
		}
		th, err := proc.NewThread()
		if err != nil {
			return false
		}
		c, err := NewClient(th, 8<<20)
		if err != nil {
			return false
		}
		oracle := map[string][]byte{}
		for step := 0; step < 150; step++ {
			k := fmt.Sprintf("k%d", rng.Intn(30))
			switch rng.Intn(3) {
			case 0, 1:
				v := []byte(fmt.Sprintf("v%d", rng.Intn(1000)))
				if err := c.Set(k, v); err != nil {
					return false
				}
				oracle[k] = v
			case 2:
				found, err := c.Del(k)
				if err != nil {
					return false
				}
				_, want := oracle[k]
				if found != want {
					return false
				}
				delete(oracle, k)
			}
		}
		for k, want := range oracle {
			got, ok, err := c.Get(k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBaselineServer(t *testing.T) {
	m := hw.NewMachine(hw.SmallTest())
	server := NewBaselineServer(m.Cores[3])
	client := NewBaselineClient(m.Cores[0], server)
	if err := client.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := client.Get("a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, _ := client.Get("zzz"); ok {
		t.Error("missing key found")
	}
	if server.core.Cycles() == 0 {
		t.Error("server core not charged")
	}
}

func TestFig10Shapes(t *testing.T) {
	costs, err := MeasureCosts(hw.M1(), false, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	costsTag, err := MeasureCosts(hw.M1(), true, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Single client: RedisJMP ~4x the socket baseline (paper: "by a
	// factor of 4x for GET and SET requests").
	jmp1 := costs.GetSeries([]int{1})[0].RPS
	base1 := costs.BaselineGetSeries([]int{1}, 1)[0].RPS
	ratio := jmp1 / base1
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("GET speedup at 1 client = %.2fx, want ~4x", ratio)
	}
	// Tags help.
	if costsTag.JmpGet >= costs.JmpGet {
		t.Errorf("tags did not reduce GET cost: %.0f vs %.0f", costsTag.JmpGet, costs.JmpGet)
	}
	// At full utilization RedisJMP beats 6 separate Redis instances.
	clients := []int{1, 2, 4, 8, 12, 16, 32, 64, 100}
	jmp := costs.GetSeries(clients)
	six := costs.BaselineGetSeries(clients, 6)
	if jmp[len(jmp)-1].RPS <= six[len(six)-1].RPS {
		t.Errorf("RedisJMP at 100 clients (%.0f) not above Redis 6x (%.0f)",
			jmp[len(jmp)-1].RPS, six[len(six)-1].RPS)
	}
	// GET throughput rises with clients, but lock-line contention keeps
	// 12-client throughput below ~3x the single client (the paper's peak
	// is ~1.8x its single-client rate).
	if jmp[4].RPS < jmp[0].RPS*1.2 || jmp[4].RPS > jmp[0].RPS*3.5 {
		t.Errorf("GET scaling off: 1 client %.0f, 12 clients %.0f", jmp[0].RPS, jmp[4].RPS)
	}
	// SET throughput is lock-limited: more clients do not help much.
	sets := costs.SetSeries(clients)
	if sets[len(sets)-1].RPS > sets[1].RPS*1.5 {
		t.Errorf("SETs scaled despite the exclusive lock: %v", sets)
	}
	// Mixed workload: throughput falls as SET percentage rises.
	mix := costs.MixSeries(12, []int{0, 10, 50, 100})
	for i := 1; i < len(mix); i++ {
		if mix[i].RPS > mix[i-1].RPS {
			t.Errorf("throughput rose with more SETs: %v", mix)
		}
	}
	// Even at 10%% SETs RedisJMP stays above the file-based baseline.
	baseMix := costs.BaselineMixSeries(12, []int{10})
	if mix[1].RPS <= baseMix[0].RPS {
		t.Errorf("RedisJMP at 10%% SETs (%.0f) below baseline (%.0f)", mix[1].RPS, baseMix[0].RPS)
	}
}

func TestJmpMGet(t *testing.T) {
	_, c := newClient(t)
	for _, kv := range [][2]string{{"a", "va"}, {"b", "vb\r\n\x00"}, {"c", "vc"}} {
		if err := c.Set(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := c.MGet([]string{"b", "missing", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("MGet returned %d values", len(vals))
	}
	if string(vals[0]) != "vb\r\n\x00" || vals[1] != nil || string(vals[2]) != "va" {
		t.Errorf("MGet = %q", vals)
	}
}

func TestShardNamesDisjoint(t *testing.T) {
	// Two shard stores in one system must not collide in the registries:
	// one process holding clients on both sees each shard's own data.
	sys := kernel.New(hw.NewMachine(hw.SmallTest()))
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Exit()
	th, err := proc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	c0, err := NewClientNamed(th, 1<<20, ShardNames(0))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewClientNamed(th, 1<<20, ShardNames(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.Set("k", []byte("zero")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Set("k", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c0.Get("k"); string(v) != "zero" {
		t.Errorf("shard 0 sees %q", v)
	}
	if v, _, _ := c1.Get("k"); string(v) != "one" {
		t.Errorf("shard 1 sees %q", v)
	}
	for i, c := range []*Client{c0, c1} {
		if err := c.Close(); err != nil {
			t.Errorf("close %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := DestroyNamed(th, ShardNames(i)); err != nil {
			t.Errorf("destroy shard %d: %v", i, err)
		}
	}
}
