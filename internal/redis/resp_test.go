package redis

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

func TestReadCommandBinaryCRLF(t *testing.T) {
	args := []string{"SET", "k\r\ney", "va\r\nl\x00\xffue\r\n"}
	got, err := ReadCommand(bufio.NewReader(bytes.NewReader(EncodeCommand(args...))))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("got %q, want %q", got, args)
	}
}

func TestDecodeCommandBinaryCRLF(t *testing.T) {
	// The old line-split decoder misparsed exactly this input.
	args := []string{"SET", "a", "1\r\n2"}
	got, err := DecodeCommand(EncodeCommand(args...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("got %q, want %q", got, args)
	}
}

func TestReadCommandFragmented(t *testing.T) {
	// One byte per Read call: the length-driven reader must reassemble.
	args := []string{"SET", "key", "binary\r\nvalue"}
	r := bufio.NewReader(iotest.OneByteReader(bytes.NewReader(EncodeCommand(args...))))
	got, err := ReadCommand(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("got %q, want %q", got, args)
	}
}

func TestReadCommandPipelined(t *testing.T) {
	var stream bytes.Buffer
	cmds := [][]string{
		{"SET", "a", "1"},
		{"GET", "a"},
		{"SET", "b", "x\r\ny"},
		{"DEL", "a"},
	}
	for _, c := range cmds {
		stream.Write(EncodeCommand(c...))
	}
	br := bufio.NewReader(&stream)
	for i, want := range cmds {
		got, err := ReadCommand(br)
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("command %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := ReadCommand(br); err != io.EOF {
		t.Fatalf("after stream: got %v, want io.EOF", err)
	}
}

func TestReadCommandOversizedHeaders(t *testing.T) {
	cases := []string{
		"*999999999\r\n",         // array header over MaxArgs
		"$5\r\nhello\r\n",        // bulk without array header
		"*1\r\n$999999999\r\n",   // bulk length over MaxBulkLen
		"*-1\r\n",                // negative array count
		"*1\r\n$-5\r\n",          // negative bulk length
		"*1\r\n$3\r\nabcde\r\n",  // body longer than header
		"*1\r\n:3\r\n",           // non-bulk array element
		"PING\r\n",               // inline commands unsupported
		"*1\n$4\nPING\n",         // LF-only line endings
		"*2\r\n$4\r\nPING\r\n",   // truncated: fewer elements than promised
		"*1\r\n$10\r\nshort\r\n", // truncated bulk body
	}
	for _, in := range cases {
		_, err := ReadCommand(bufio.NewReader(strings.NewReader(in)))
		if err == nil {
			t.Errorf("input %q: expected error", in)
		}
		if err == io.EOF {
			t.Errorf("input %q: mid-message truncation must not be clean io.EOF", in)
		}
	}
}

func TestReadCommandLyingLengthNoHugeAlloc(t *testing.T) {
	// A header claiming MaxBulkLen with no body must fail from truncation,
	// not attempt a 64 MiB allocation first (the body buffer grows with
	// the bytes actually received).
	in := "*1\r\n$67108864\r\nx"
	_, err := ReadCommand(bufio.NewReader(strings.NewReader(in)))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadReplyKinds(t *testing.T) {
	br := bufio.NewReader(strings.NewReader(
		"+OK\r\n:42\r\n-ERR boom\r\n$-1\r\n$6\r\na\r\nb\x00c\r\n"))
	if v, _, err := ReadReply(br); err != nil || string(v) != "OK" {
		t.Fatalf("simple: %q %v", v, err)
	}
	if v, _, err := ReadReply(br); err != nil || string(v) != "42" {
		t.Fatalf("int: %q %v", v, err)
	}
	_, _, err := ReadReply(br)
	var re ReplyError
	if !errors.As(err, &re) || string(re) != "ERR boom" {
		t.Fatalf("error reply: %v", err)
	}
	if _, isNil, err := ReadReply(br); err != nil || !isNil {
		t.Fatalf("null bulk: isNil=%v err=%v", isNil, err)
	}
	if v, _, err := ReadReply(br); err != nil || string(v) != "a\r\nb\x00c" {
		t.Fatalf("binary bulk: %q %v", v, err)
	}
	if _, _, err := ReadReply(br); err != io.EOF {
		t.Fatalf("end: got %v, want io.EOF", err)
	}
}

func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\na\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$4\r\na\r\nb\r\n"))
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("*1\r\n$0\r\n\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*1\r\n$999999999\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := ReadCommand(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Anything that parses must survive an encode/decode round trip.
		again, err := DecodeCommand(EncodeCommand(args...))
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", args, err)
		}
		if !reflect.DeepEqual(args, again) {
			t.Fatalf("round trip changed %q to %q", args, again)
		}
	})
}

func TestArrayReplyRoundTrip(t *testing.T) {
	vals := [][]byte{
		[]byte("plain"),
		nil, // missing key: null bulk
		[]byte("bin\r\n\x00\xffary"),
		{}, // present but empty
	}
	got, nils, err := DecodeArrayReply(EncodeArray(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	wantNil := []bool{false, true, false, false}
	for i := range vals {
		if nils[i] != wantNil[i] {
			t.Errorf("nils[%d] = %v, want %v", i, nils[i], wantNil[i])
		}
		if !wantNil[i] && !bytes.Equal(got[i], vals[i]) {
			t.Errorf("vals[%d] = %q, want %q", i, got[i], vals[i])
		}
	}

	if _, _, err := DecodeArrayReply(EncodeArray(nil)); err != nil {
		t.Errorf("empty array: %v", err)
	}
}

func TestArrayReplyErrors(t *testing.T) {
	var re ReplyError
	if _, _, err := DecodeArrayReply(EncodeError("shard timeout")); !errors.As(err, &re) {
		t.Errorf("error reply: got %v, want ReplyError", err)
	}
	if _, _, err := DecodeArrayReply(EncodeBulk([]byte("x"))); !errors.Is(err, ErrProtocol) {
		t.Errorf("non-array reply: got %v, want ErrProtocol", err)
	}
	if _, _, err := DecodeArrayReply([]byte("*2\r\n$1\r\na\r\n")); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated array: got %v, want unexpected EOF", err)
	}
	huge := []byte("*999999999\r\n")
	if _, _, err := DecodeArrayReply(huge); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized header: got %v, want ErrProtocol", err)
	}
}

func TestExecuteTable(t *testing.T) {
	// Store-less commands work without a client; data commands refuse.
	if got := string(Execute(nil, []string{"PING"})); got != "+PONG\r\n" {
		t.Errorf("PING = %q", got)
	}
	if got := string(Execute(nil, []string{"ECHO", "x\r\ny"})); got != "$4\r\nx\r\ny\r\n" {
		t.Errorf("ECHO = %q", got)
	}
	if got := string(Execute(nil, []string{"GET", "k"})); !strings.Contains(got, "no store") {
		t.Errorf("GET without store = %q", got)
	}
	if got := string(Execute(nil, []string{"NOSUCH"})); !strings.Contains(got, "unknown command") {
		t.Errorf("unknown = %q", got)
	}
	if got := string(Execute(nil, nil)); !strings.Contains(got, "empty") {
		t.Errorf("empty = %q", got)
	}
}
