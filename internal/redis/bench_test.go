package redis

import (
	"fmt"
	"testing"

	"spacejmp/internal/core"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
)

func benchClient(b *testing.B) *Client {
	b.Helper()
	sys := kernel.New(hw.NewMachine(hw.SmallTest()))
	proc, err := sys.NewProcess(core.Creds{UID: 1, GID: 1})
	if err != nil {
		b.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewClient(th, 16<<20)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkJmpGet measures a full RedisJMP GET: two VAS switches plus the
// MMU-mediated hash walk. The sim-cycles metric is the simulated cost.
func BenchmarkJmpGet(b *testing.B) {
	c := benchClient(b)
	for i := 0; i < 256; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	start := c.th.Core.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Get(fmt.Sprintf("k%d", i%256)); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(c.th.Core.Cycles()-start)/float64(b.N), "sim-cycles/op")
}

// BenchmarkJmpSet measures a RedisJMP SET under the exclusive lock.
func BenchmarkJmpSet(b *testing.B) {
	c := benchClient(b)
	start := c.th.Core.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i%256), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(c.th.Core.Cycles()-start)/float64(b.N), "sim-cycles/op")
}

// BenchmarkBaselineGet measures the socket-path baseline.
func BenchmarkBaselineGet(b *testing.B) {
	m := hw.NewMachine(hw.SmallTest())
	server := NewBaselineServer(m.Cores[3])
	client := NewBaselineClient(m.Cores[0], server)
	if err := client.Set("k", []byte("v")); err != nil {
		b.Fatal(err)
	}
	start := client.core.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := client.Get("k"); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(client.core.Cycles()-start)/float64(b.N), "sim-cycles/op")
}
