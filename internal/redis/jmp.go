package redis

import (
	"errors"
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
	"spacejmp/internal/mspace"
)

// RedisJMP (§5.3): the server process is elided entirely. The first client
// lazily creates a lockable segment holding the store, plus two VASes over
// it — one mapping the segment read-only (GETs take the lock shared) and
// one mapping it read-write (SETs take it exclusively). Every client also
// attaches a small private scratch heap into its own view of the VAS for
// command parsing, so GETs never need write access to the shared segment.

// Names in the global registries, exported so tooling and the serving
// layer can find (and tear down) the shared state.
const (
	// SegName is the shared data segment holding the store.
	SegName = "redisjmp.data"
	// ReadVASName maps the store read-only (GETs lock it shared).
	ReadVASName = "redisjmp.read"
	// WriteVASName maps the store read-write (SETs lock it exclusively).
	WriteVASName = "redisjmp.write"
)

// Names identifies one store instance in the global registries. The cluster
// layer runs one instance per shard node; the single-machine experiments
// and the serving layer's pool backend use DefaultNames.
type Names struct {
	Seg      string // the shared data segment
	ReadVAS  string // maps the segment read-only
	WriteVAS string // maps the segment read-write
}

// DefaultNames is the single-store instance of §5.3.
var DefaultNames = Names{Seg: SegName, ReadVAS: ReadVASName, WriteVAS: WriteVASName}

// ShardNames returns the registry names of cluster shard node i's store.
func ShardNames(i int) Names {
	return Names{
		Seg:      fmt.Sprintf("cluster.s%d.data", i),
		ReadVAS:  fmt.Sprintf("cluster.s%d.read", i),
		WriteVAS: fmt.Sprintf("cluster.s%d.write", i),
	}
}

// StandbyNames returns the registry names of shard node i's warm standby
// store — the replica copy the cluster's failover path rebuilds from
// checkpoint generations and promotes when the primary dies.
func StandbyNames(i int) Names {
	return Names{
		Seg:      fmt.Sprintf("cluster.s%d.standby.data", i),
		ReadVAS:  fmt.Sprintf("cluster.s%d.standby.read", i),
		WriteVAS: fmt.Sprintf("cluster.s%d.standby.write", i),
	}
}

// ScratchName returns the global registry name of the private scratch heap
// a client of pid attaches to the instance named by names. Exported so the
// cluster can reap a crashed node's scratch segment — the kernel reaper
// only reclaims private segments, and a crashed client never ran Close.
func ScratchName(names Names, pid int) string {
	return fmt.Sprintf("%s.scratch.p%d", names.Seg, pid)
}

// ErrStoreFull reports a SET that could not fit in the shared segment's
// heap. It wraps core.ErrNoSpace (and the failing operation keeps its
// mspace.ErrNoSpace cause), so errors.Is works end to end across layers.
var ErrStoreFull = fmt.Errorf("redis: store segment full: %w", core.ErrNoSpace)

// SegBase is the store segment's fixed address; ScratchBase hosts each
// client's private scratch segment inside its attachments.
const (
	SegBase     = core.GlobalBase
	scratchSize = 64 << 10
)

// ScratchBase hosts client scratch heaps one PML4 slot above the store.
var ScratchBase = core.GlobalBase + arch.VirtAddr(arch.LevelCoverage(3))

// parseCycles models the RESP command parse/format work redis-benchmark
// style clients perform per request (in the scratch heap).
const parseCycles = 300

// Client is one RedisJMP client process.
type Client struct {
	th     *core.Thread
	names  Names
	readH  core.Handle
	writeH core.Handle
	store  *Store

	// scratch is this client's private heap segment id.
	scratch core.SegID
}

// NewClient attaches the calling thread to the RedisJMP state, creating it
// (segment, store, VASes) if this is the first client.
func NewClient(th *core.Thread, segSize uint64) (*Client, error) {
	return NewClientNamed(th, segSize, DefaultNames)
}

// NewClientNamed attaches the calling thread to the store instance named by
// names, creating it (segment, store, VASes) if this is the first client.
// One process may hold clients on several instances at once — the cluster's
// router workers attach every co-resident shard this way. opts configure
// the data segment's allocation when this client is the one bootstrapping
// it (the cluster places replicated shard stores in the NVM tier this way);
// they are ignored when the store already exists.
func NewClientNamed(th *core.Thread, segSize uint64, names Names, opts ...core.SegOption) (*Client, error) {
	c := &Client{th: th, names: names}
	if err := c.bootstrap(segSize, opts...); err != nil {
		return nil, err
	}
	vidR, err := th.VASFind(names.ReadVAS)
	if err != nil {
		return nil, err
	}
	vidW, err := th.VASFind(names.WriteVAS)
	if err != nil {
		return nil, err
	}
	if c.readH, err = th.VASAttach(vidR); err != nil {
		return nil, err
	}
	if c.writeH, err = th.VASAttach(vidW); err != nil {
		return nil, err
	}
	// Private scratch heap, attached to this client's views only. The name
	// includes the instance so a process holding clients on several shard
	// stores gets one scratch heap per instance.
	scratchName := fmt.Sprintf("%s.scratch.p%d", names.Seg, th.Proc.PID)
	c.scratch, err = th.SegFind(scratchName)
	if errors.Is(err, core.ErrNotFound) {
		c.scratch, err = th.SegAlloc(scratchName, ScratchBase, scratchSize, arch.PermRW)
	}
	if err != nil {
		return nil, err
	}
	if err := th.SegAttachLocal(c.readH, c.scratch, arch.PermRW); err != nil {
		return nil, err
	}
	if err := th.SegAttachLocal(c.writeH, c.scratch, arch.PermRW); err != nil {
		return nil, err
	}
	// Bind the store handle (reads header pointers) from inside the VAS.
	if err := th.VASSwitch(c.readH); err != nil {
		return nil, err
	}
	c.store, err = OpenStore(th, SegBase)
	if err != nil {
		return nil, err
	}
	return c, th.VASSwitch(core.PrimaryHandle)
}

// bootstrap creates the shared state if no client has yet (§5.3: "the
// server data is initialized lazily by its first client").
func (c *Client) bootstrap(segSize uint64, opts ...core.SegOption) error {
	th := c.th
	if _, err := th.VASFind(c.names.ReadVAS); err == nil {
		return nil
	} else if !errors.Is(err, core.ErrNotFound) {
		return err
	}
	sid, err := th.SegAlloc(c.names.Seg, SegBase, segSize, arch.PermRW, opts...)
	if err != nil {
		if errors.Is(err, core.ErrExists) {
			return nil // raced with another bootstrapper
		}
		return err
	}
	vidW, err := th.VASCreate(c.names.WriteVAS, 0o666)
	if err != nil {
		return err
	}
	if err := th.SegAttachVAS(vidW, sid, arch.PermRW); err != nil {
		return err
	}
	vidR, err := th.VASCreate(c.names.ReadVAS, 0o666)
	if err != nil {
		return err
	}
	if err := th.SegAttachVAS(vidR, sid, arch.PermRead); err != nil {
		return err
	}
	// Initialize the store through a temporary write attachment.
	h, err := th.VASAttach(vidW)
	if err != nil {
		return err
	}
	if err := th.VASSwitch(h); err != nil {
		return err
	}
	if _, err := CreateStore(th, SegBase, segSize); err != nil {
		return err
	}
	if err := th.VASSwitch(core.PrimaryHandle); err != nil {
		return err
	}
	return th.VASDetach(h)
}

// EnableTags assigns TLB tags to both VASes (the "RedisJMP (Tags)" series
// of Figure 10a).
func (c *Client) EnableTags() error {
	for _, name := range []string{c.names.ReadVAS, c.names.WriteVAS} {
		vid, err := c.th.VASFind(name)
		if err != nil {
			return err
		}
		if err := c.th.VASCtl(vid, core.SetTag()); err != nil {
			return err
		}
	}
	return nil
}

// Get executes a GET: parse in the scratch heap, switch into the read VAS
// (shared lock), walk the table directly, switch back. The switch back
// happens even when the table walk fails, so an error never strands the
// thread inside the VAS holding the shared lock.
func (c *Client) Get(key string) ([]byte, bool, error) {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.readH); err != nil {
		return nil, false, err
	}
	val, ok, err := c.store.Get([]byte(key))
	if serr := c.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if err != nil {
		return nil, false, err
	}
	return val, ok, nil
}

// MGet executes a multi-key GET on the paper's fast path: one switch into
// the read VAS (one shared lock acquisition), one table walk per key, one
// switch out. This is the operation Figure 7's comparison is about — over
// message passing every key group costs a round trip of cache-line
// transfers, while here the additional keys cost only memory accesses.
// Missing keys come back as nil entries.
func (c *Client) MGet(keys []string) ([][]byte, error) {
	c.th.Core.AddCycles(uint64(len(keys)) * parseCycles)
	if err := c.th.VASSwitch(c.readH); err != nil {
		return nil, err
	}
	vals := make([][]byte, len(keys))
	var err error
	for i, key := range keys {
		var v []byte
		var ok bool
		if v, ok, err = c.store.Get([]byte(key)); err != nil {
			break
		}
		if ok {
			vals[i] = v
		}
	}
	if serr := c.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// Set executes a SET under the exclusive lock, rehashing while exclusive
// if the table outgrew its buckets. Whatever happens inside the critical
// section, the thread switches back out (releasing the exclusive lock) —
// a full heap must not leave the segment locked forever. A heap-exhausted
// SET comes back wrapped in ErrStoreFull, so callers can test it with
// errors.Is against redis, core, and mspace sentinels alike.
func (c *Client) Set(key string, val []byte) error {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.writeH); err != nil {
		return err
	}
	err := c.store.Set([]byte(key), val)
	if err == nil {
		var need bool
		if need, err = c.store.NeedRehash(); err == nil && need {
			err = c.store.Rehash()
		}
	}
	if serr := c.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if errors.Is(err, mspace.ErrNoSpace) {
		return fmt.Errorf("%w: %w", ErrStoreFull, err)
	}
	return err
}

// Del removes a key under the exclusive lock.
func (c *Client) Del(key string) (bool, error) {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.writeH); err != nil {
		return false, err
	}
	found, err := c.store.Del([]byte(key))
	if serr := c.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	return found, err
}

// Close detaches the client from the RedisJMP state and frees its private
// scratch segment. The shared VASes and store survive — they are
// first-class and outlive every client (§3.2).
func (c *Client) Close() error {
	if cur := c.th.Current(); cur != core.PrimaryHandle {
		if err := c.th.VASSwitch(core.PrimaryHandle); err != nil {
			return err
		}
	}
	for _, h := range []core.Handle{c.readH, c.writeH} {
		if err := c.th.VASDetach(h); err != nil {
			return err
		}
	}
	return c.th.SegFree(c.scratch)
}

// Destroy removes the shared RedisJMP state: both VASes and the store
// segment are destroyed and their frames returned to the allocator. Every
// client must have Closed first (attached VASes refuse destruction).
func Destroy(th *core.Thread) error { return DestroyNamed(th, DefaultNames) }

// DestroyNamed removes the store instance named by names, as Destroy does
// for the default instance.
func DestroyNamed(th *core.Thread, names Names) error {
	sid, err := th.SegFind(names.Seg)
	if err != nil {
		return err
	}
	for _, name := range []string{names.ReadVAS, names.WriteVAS} {
		vid, err := th.VASFind(name)
		if err != nil {
			return err
		}
		if err := th.SegDetachVAS(vid, sid); err != nil {
			return err
		}
		if err := th.VASDestroy(vid); err != nil {
			return err
		}
	}
	return th.SegFree(sid)
}
