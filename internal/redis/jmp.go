package redis

import (
	"errors"
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/core"
)

// RedisJMP (§5.3): the server process is elided entirely. The first client
// lazily creates a lockable segment holding the store, plus two VASes over
// it — one mapping the segment read-only (GETs take the lock shared) and
// one mapping it read-write (SETs take it exclusively). Every client also
// attaches a small private scratch heap into its own view of the VAS for
// command parsing, so GETs never need write access to the shared segment.

// Names in the global registries.
const (
	segName     = "redisjmp.data"
	readVASName = "redisjmp.read"
	writVASName = "redisjmp.write"
)

// SegBase is the store segment's fixed address; ScratchBase hosts each
// client's private scratch segment inside its attachments.
const (
	SegBase     = core.GlobalBase
	scratchSize = 64 << 10
)

// ScratchBase hosts client scratch heaps one PML4 slot above the store.
var ScratchBase = core.GlobalBase + arch.VirtAddr(arch.LevelCoverage(3))

// parseCycles models the RESP command parse/format work redis-benchmark
// style clients perform per request (in the scratch heap).
const parseCycles = 300

// Client is one RedisJMP client process.
type Client struct {
	th     *core.Thread
	readH  core.Handle
	writeH core.Handle
	store  *Store

	// scratch is this client's private heap segment id.
	scratch core.SegID
}

// NewClient attaches the calling thread to the RedisJMP state, creating it
// (segment, store, VASes) if this is the first client.
func NewClient(th *core.Thread, segSize uint64) (*Client, error) {
	c := &Client{th: th}
	if err := c.bootstrap(segSize); err != nil {
		return nil, err
	}
	vidR, err := th.VASFind(readVASName)
	if err != nil {
		return nil, err
	}
	vidW, err := th.VASFind(writVASName)
	if err != nil {
		return nil, err
	}
	if c.readH, err = th.VASAttach(vidR); err != nil {
		return nil, err
	}
	if c.writeH, err = th.VASAttach(vidW); err != nil {
		return nil, err
	}
	// Private scratch heap, attached to this client's views only.
	scratchName := fmt.Sprintf("redisjmp.scratch.p%d", th.Proc.PID)
	c.scratch, err = th.SegFind(scratchName)
	if errors.Is(err, core.ErrNotFound) {
		c.scratch, err = th.SegAlloc(scratchName, ScratchBase, scratchSize, arch.PermRW)
	}
	if err != nil {
		return nil, err
	}
	if err := th.SegAttachLocal(c.readH, c.scratch, arch.PermRW); err != nil {
		return nil, err
	}
	if err := th.SegAttachLocal(c.writeH, c.scratch, arch.PermRW); err != nil {
		return nil, err
	}
	// Bind the store handle (reads header pointers) from inside the VAS.
	if err := th.VASSwitch(c.readH); err != nil {
		return nil, err
	}
	c.store, err = OpenStore(th, SegBase)
	if err != nil {
		return nil, err
	}
	return c, th.VASSwitch(core.PrimaryHandle)
}

// bootstrap creates the shared state if no client has yet (§5.3: "the
// server data is initialized lazily by its first client").
func (c *Client) bootstrap(segSize uint64) error {
	th := c.th
	if _, err := th.VASFind(readVASName); err == nil {
		return nil
	} else if !errors.Is(err, core.ErrNotFound) {
		return err
	}
	sid, err := th.SegAlloc(segName, SegBase, segSize, arch.PermRW)
	if err != nil {
		if errors.Is(err, core.ErrExists) {
			return nil // raced with another bootstrapper
		}
		return err
	}
	vidW, err := th.VASCreate(writVASName, 0o666)
	if err != nil {
		return err
	}
	if err := th.SegAttachVAS(vidW, sid, arch.PermRW); err != nil {
		return err
	}
	vidR, err := th.VASCreate(readVASName, 0o666)
	if err != nil {
		return err
	}
	if err := th.SegAttachVAS(vidR, sid, arch.PermRead); err != nil {
		return err
	}
	// Initialize the store through a temporary write attachment.
	h, err := th.VASAttach(vidW)
	if err != nil {
		return err
	}
	if err := th.VASSwitch(h); err != nil {
		return err
	}
	if _, err := CreateStore(th, SegBase, segSize); err != nil {
		return err
	}
	if err := th.VASSwitch(core.PrimaryHandle); err != nil {
		return err
	}
	return th.VASDetach(h)
}

// EnableTags assigns TLB tags to both VASes (the "RedisJMP (Tags)" series
// of Figure 10a).
func (c *Client) EnableTags() error {
	for _, name := range []string{readVASName, writVASName} {
		vid, err := c.th.VASFind(name)
		if err != nil {
			return err
		}
		if err := c.th.VASCtl(vid, core.SetTag()); err != nil {
			return err
		}
	}
	return nil
}

// Get executes a GET: parse in the scratch heap, switch into the read VAS
// (shared lock), walk the table directly, switch back.
func (c *Client) Get(key string) ([]byte, bool, error) {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.readH); err != nil {
		return nil, false, err
	}
	val, ok, err := c.store.Get([]byte(key))
	if err != nil {
		return nil, false, err
	}
	if err := c.th.VASSwitch(core.PrimaryHandle); err != nil {
		return nil, false, err
	}
	return val, ok, nil
}

// Set executes a SET under the exclusive lock, rehashing while exclusive
// if the table outgrew its buckets.
func (c *Client) Set(key string, val []byte) error {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.writeH); err != nil {
		return err
	}
	if err := c.store.Set([]byte(key), val); err != nil {
		return err
	}
	if need, err := c.store.NeedRehash(); err != nil {
		return err
	} else if need {
		if err := c.store.Rehash(); err != nil {
			return err
		}
	}
	return c.th.VASSwitch(core.PrimaryHandle)
}

// Del removes a key under the exclusive lock.
func (c *Client) Del(key string) (bool, error) {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.writeH); err != nil {
		return false, err
	}
	found, err := c.store.Del([]byte(key))
	if err != nil {
		return false, err
	}
	return found, c.th.VASSwitch(core.PrimaryHandle)
}
