package redis

import (
	"fmt"
	"strings"
)

// Tenant-scoped naming (paper §4.2). A tenant's view of the store is the
// slice of the keyspace under its prefix: every key a tenant writes is
// physically stored as "t:<id>:<key>", so one shared, replicated shard
// store holds many tenant views and the existing checkpoint-shipping,
// promotion, and slot-migration machinery covers all of them at once.
// Isolation is enforced above the store — the serving layer qualifies every
// key with the authenticated tenant's prefix and a capability check guards
// any explicitly cross-view address — so a key outside the caller's view is
// unreachable, not merely unlikely to collide.

// tenantPrefix is the marker that starts every tenant-qualified key and
// every tenant-scoped registry name.
const tenantPrefix = "t:"

// TenantKey qualifies a logical key with a tenant's view prefix, producing
// the physical store key.
func TenantKey(id, key string) string {
	return tenantPrefix + id + ":" + key
}

// SplitTenantKey splits a physical key into its tenant id and logical key.
// ok is false when the key carries no tenant prefix (single-tenant traffic)
// or the prefix is malformed (empty id, no closing separator).
func SplitTenantKey(key string) (id, rest string, ok bool) {
	if !strings.HasPrefix(key, tenantPrefix) {
		return "", "", false
	}
	body := key[len(tenantPrefix):]
	i := strings.IndexByte(body, ':')
	if i <= 0 {
		return "", "", false
	}
	return body[:i], body[i+1:], true
}

// TenantNames returns the tenant-scoped registry names of a tenant's view
// over the store instance named by base — the names the tenant registry
// registers capability objects under ("t:<id>:cluster.s0.data", ...). The
// physical segment and VASes stay shared; these names identify the
// per-tenant view composed over them.
func TenantNames(id string, base Names) Names {
	return Names{
		Seg:      fmt.Sprintf("%s%s:%s", tenantPrefix, id, base.Seg),
		ReadVAS:  fmt.Sprintf("%s%s:%s", tenantPrefix, id, base.ReadVAS),
		WriteVAS: fmt.Sprintf("%s%s:%s", tenantPrefix, id, base.WriteVAS),
	}
}
