// Package redis reproduces the paper's Redis experiment (§5.3, Figure 10):
// a baseline single-threaded key-value server reached over a socket, versus
// RedisJMP — a client-side library in which clients switch into a shared
// server VAS and execute the operations directly against a lockable
// segment, eliding the server process entirely.
package redis

import (
	"fmt"
	"strconv"
	"strings"
)

// RESP is the Redis serialization protocol (the subset redis-benchmark
// exercises: inline arrays of bulk strings for commands; simple strings,
// bulk strings and errors for replies).

// EncodeCommand renders a command as a RESP array of bulk strings.
func EncodeCommand(args ...string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	return []byte(b.String())
}

// DecodeCommand parses a RESP command array.
func DecodeCommand(data []byte) ([]string, error) {
	s := string(data)
	if !strings.HasPrefix(s, "*") {
		return nil, fmt.Errorf("redis: not a command array")
	}
	lines := strings.Split(s, "\r\n")
	n, err := strconv.Atoi(strings.TrimPrefix(lines[0], "*"))
	if err != nil {
		return nil, fmt.Errorf("redis: bad array header %q", lines[0])
	}
	var out []string
	li := 1
	for i := 0; i < n; i++ {
		if li+1 >= len(lines) {
			return nil, fmt.Errorf("redis: truncated command")
		}
		if !strings.HasPrefix(lines[li], "$") {
			return nil, fmt.Errorf("redis: expected bulk string, got %q", lines[li])
		}
		want, err := strconv.Atoi(strings.TrimPrefix(lines[li], "$"))
		if err != nil {
			return nil, err
		}
		body := lines[li+1]
		if len(body) != want {
			return nil, fmt.Errorf("redis: bulk length %d != %d", len(body), want)
		}
		out = append(out, body)
		li += 2
	}
	return out, nil
}

// Replies.

// EncodeSimple renders "+OK"-style replies.
func EncodeSimple(s string) []byte { return []byte("+" + s + "\r\n") }

// EncodeError renders an error reply.
func EncodeError(s string) []byte { return []byte("-ERR " + s + "\r\n") }

// EncodeBulk renders a bulk string reply; nil renders the null bulk.
func EncodeBulk(v []byte) []byte {
	if v == nil {
		return []byte("$-1\r\n")
	}
	return []byte(fmt.Sprintf("$%d\r\n%s\r\n", len(v), v))
}

// DecodeReply parses a reply, returning (value, isNil, error).
func DecodeReply(data []byte) ([]byte, bool, error) {
	s := string(data)
	switch {
	case strings.HasPrefix(s, "+"):
		return []byte(strings.TrimSuffix(s[1:], "\r\n")), false, nil
	case strings.HasPrefix(s, "-"):
		return nil, false, fmt.Errorf("redis: %s", strings.TrimSuffix(s[1:], "\r\n"))
	case strings.HasPrefix(s, "$-1"):
		return nil, true, nil
	case strings.HasPrefix(s, "$"):
		body, _, ok := strings.Cut(s[1:], "\r\n")
		if !ok {
			return nil, false, fmt.Errorf("redis: truncated bulk")
		}
		n, err := strconv.Atoi(body)
		if err != nil {
			return nil, false, err
		}
		rest := s[1+len(body)+2:]
		if len(rest) < n {
			return nil, false, fmt.Errorf("redis: short bulk")
		}
		return []byte(rest[:n]), false, nil
	default:
		return nil, false, fmt.Errorf("redis: unknown reply %q", s)
	}
}
