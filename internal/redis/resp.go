// Package redis reproduces the paper's Redis experiment (§5.3, Figure 10):
// a baseline single-threaded key-value server reached over a socket, versus
// RedisJMP — a client-side library in which clients switch into a shared
// server VAS and execute the operations directly against a lockable
// segment, eliding the server process entirely.
package redis

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RESP is the Redis serialization protocol (the subset redis-benchmark
// exercises: inline arrays of bulk strings for commands; simple strings,
// integers, bulk strings and errors for replies). Bulk strings are
// length-prefixed, so keys and values may contain arbitrary bytes —
// including CR and LF — and the reader below is length-driven rather than
// line-split so it stays correct on binary payloads and on fragmented
// reads from a real TCP stream.

// Protocol hardening limits: a malicious or corrupt header must not make
// the reader allocate unboundedly before any payload byte has arrived.
const (
	// MaxArgs bounds the element count of one command array.
	MaxArgs = 1 << 16
	// MaxBulkLen bounds one bulk string (64 MiB, well above any modeled
	// workload but far below anything that could wedge the host).
	MaxBulkLen = 64 << 20
)

// ErrProtocol reports malformed RESP input.
var ErrProtocol = errors.New("redis: protocol error")

// ReplyError is an error reply ("-ERR ...") decoded from a server. It is
// distinct from transport and protocol errors so clients can tell "the
// server refused this command" from "the connection is broken".
type ReplyError string

func (e ReplyError) Error() string { return string(e) }

// EncodeCommand renders a command as a RESP array of bulk strings.
func EncodeCommand(args ...string) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	return b.Bytes()
}

// readLine reads one CRLF-terminated header line. Header lines never
// contain CR or LF themselves (bulk bodies, which may, are read by length
// instead). first distinguishes a clean end-of-stream before any byte of a
// message (io.EOF) from truncation inside one (io.ErrUnexpectedEOF).
func readLine(br *bufio.Reader, first bool) (string, error) {
	s, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && (len(s) > 0 || !first) {
			return "", io.ErrUnexpectedEOF
		}
		return "", err
	}
	if len(s) < 2 || s[len(s)-2] != '\r' {
		return "", fmt.Errorf("%w: header %q not CRLF-terminated", ErrProtocol, strings.TrimSuffix(s, "\n"))
	}
	return s[:len(s)-2], nil
}

// readBulk reads one "$<len>\r\n<len bytes>\r\n" bulk string body given its
// already-parsed header line. The body is copied incrementally so a lying
// length header cannot force a huge up-front allocation.
func readBulk(br *bufio.Reader, header string) ([]byte, error) {
	n, err := strconv.Atoi(header[1:])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, header)
	}
	if n > MaxBulkLen {
		return nil, fmt.Errorf("%w: bulk length %d exceeds %d", ErrProtocol, n, MaxBulkLen)
	}
	var body bytes.Buffer
	if _, err := io.CopyN(&body, br, int64(n)+2); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	b := body.Bytes()
	if b[n] != '\r' || b[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk of %d bytes not CRLF-terminated", ErrProtocol, n)
	}
	return b[:n], nil
}

// ReadCommand reads exactly one RESP command array from a stream. It is
// length-driven: bulk strings may contain arbitrary bytes (embedded CRLF
// included), and partial reads simply block in the reader rather than
// misparse. A clean end-of-stream before the first byte returns io.EOF;
// truncation inside a command returns io.ErrUnexpectedEOF.
func ReadCommand(br *bufio.Reader) ([]string, error) {
	line, err := readLine(br, true)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '*' {
		return nil, fmt.Errorf("%w: expected command array, got %q", ErrProtocol, line)
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad array header %q", ErrProtocol, line)
	}
	if n > MaxArgs {
		return nil, fmt.Errorf("%w: array of %d elements exceeds %d", ErrProtocol, n, MaxArgs)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(br, false)
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("%w: expected bulk string, got %q", ErrProtocol, hdr)
		}
		body, err := readBulk(br, hdr)
		if err != nil {
			return nil, err
		}
		args = append(args, string(body))
	}
	return args, nil
}

// DecodeCommand parses a RESP command array from a byte slice. It is a
// thin wrapper over ReadCommand, kept for the in-process cost models.
func DecodeCommand(data []byte) ([]string, error) {
	return ReadCommand(bufio.NewReader(bytes.NewReader(data)))
}

// Replies.

// EncodeSimple renders "+OK"-style replies.
func EncodeSimple(s string) []byte { return []byte("+" + s + "\r\n") }

// EncodeError renders an error reply.
func EncodeError(s string) []byte { return []byte("-ERR " + s + "\r\n") }

// EncodeInt renders an integer reply (":1"-style, as Redis DEL returns).
func EncodeInt(n int64) []byte { return []byte(":" + strconv.FormatInt(n, 10) + "\r\n") }

// EncodeBulk renders a bulk string reply; nil renders the null bulk.
func EncodeBulk(v []byte) []byte {
	var b bytes.Buffer
	if v == nil {
		return []byte("$-1\r\n")
	}
	fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(v), v)
	return b.Bytes()
}

// EncodeArray renders an array reply of bulk strings (as MGET returns);
// nil elements render as null bulks.
func EncodeArray(vals [][]byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "*%d\r\n", len(vals))
	for _, v := range vals {
		b.Write(EncodeBulk(v))
	}
	return b.Bytes()
}

// EncodeUnknownCommand renders the canonical unknown-command error reply.
func EncodeUnknownCommand(name string) []byte {
	return EncodeError(fmt.Sprintf("unknown command '%s'", name))
}

// EncodeWrongArity renders the canonical arity-mismatch error reply.
func EncodeWrongArity(name string) []byte {
	return EncodeError(fmt.Sprintf("wrong number of arguments for '%s' command", strings.ToLower(name)))
}

// ReadReply reads exactly one reply from a stream, returning (value, isNil,
// error). Error replies come back as ReplyError; the value of an integer
// reply is its decimal text.
func ReadReply(br *bufio.Reader) ([]byte, bool, error) {
	line, err := readLine(br, true)
	if err != nil {
		return nil, false, err
	}
	if len(line) == 0 {
		return nil, false, fmt.Errorf("%w: empty reply line", ErrProtocol)
	}
	switch line[0] {
	case '+', ':':
		return []byte(line[1:]), false, nil
	case '-':
		return nil, false, ReplyError(line[1:])
	case '$':
		if line == "$-1" {
			return nil, true, nil
		}
		body, err := readBulk(br, line)
		if err != nil {
			return nil, false, err
		}
		return body, false, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown reply %q", ErrProtocol, line)
	}
}

// DecodeReply parses a reply from a byte slice, returning (value, isNil,
// error). Thin wrapper over ReadReply for the in-process cost models.
func DecodeReply(data []byte) ([]byte, bool, error) {
	return ReadReply(bufio.NewReader(bytes.NewReader(data)))
}

// ReadArrayReply reads exactly one array reply (as MGET returns): element
// values and per-element nil flags. Error replies come back as ReplyError,
// exactly as in ReadReply, so a caller expecting an array still sees the
// server's refusal.
func ReadArrayReply(br *bufio.Reader) ([][]byte, []bool, error) {
	line, err := readLine(br, true)
	if err != nil {
		return nil, nil, err
	}
	if len(line) == 0 {
		return nil, nil, fmt.Errorf("%w: empty reply line", ErrProtocol)
	}
	if line[0] == '-' {
		return nil, nil, ReplyError(line[1:])
	}
	if line[0] != '*' {
		return nil, nil, fmt.Errorf("%w: expected array reply, got %q", ErrProtocol, line)
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 {
		return nil, nil, fmt.Errorf("%w: bad array header %q", ErrProtocol, line)
	}
	if n > MaxArgs {
		return nil, nil, fmt.Errorf("%w: array of %d elements exceeds %d", ErrProtocol, n, MaxArgs)
	}
	vals := make([][]byte, 0, n)
	nils := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(br, false)
		if err != nil {
			return nil, nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, nil, fmt.Errorf("%w: expected bulk string, got %q", ErrProtocol, hdr)
		}
		if hdr == "$-1" {
			vals = append(vals, nil)
			nils = append(nils, true)
			continue
		}
		body, err := readBulk(br, hdr)
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, body)
		nils = append(nils, false)
	}
	return vals, nils, nil
}

// DecodeArrayReply parses an array reply from a byte slice — the cluster
// router's view of a remote MGET response.
func DecodeArrayReply(data []byte) ([][]byte, []bool, error) {
	return ReadArrayReply(bufio.NewReader(bytes.NewReader(data)))
}
