package redis

import (
	"strings"

	"spacejmp/internal/hw"
	"spacejmp/internal/urpc"
)

// Baseline Redis: a single-threaded server process owning the data,
// reached over UNIX domain sockets. The socket stack is modeled as a
// syscall plus a double copy through a kernel buffer per message — the
// communication overhead RedisJMP elides (§5.3).

// Socket cost model (cycles).
const (
	sockSyscall = 357  // enter/leave the kernel per send/recv
	sockStack   = 3800 // socket layer work per message (locking, wakeup, poll)
	sockPerLine = 200  // double copy of one cache line through the kernel
	serverLoop  = 500  // event-loop dispatch per request (epoll, fd lookup)
	execCycles  = 600  // hash-table operation on native memory

	// setPersist is the extra server-side work of a SET: object creation,
	// dict insertion, and the append-only-file write Redis performs on
	// mutations — the reason the paper's Figure 10b baseline sits far
	// below its GET throughput.
	setPersist = 60000
)

// sockMsg charges one socket message of n bytes to a core.
func sockMsg(c *hw.Core, n int) {
	c.AddCycles(sockSyscall + sockStack + uint64(urpc.Lines(n))*sockPerLine)
}

// BaselineServer is a single-threaded Redis instance pinned to one core.
type BaselineServer struct {
	core *hw.Core
	data map[string][]byte
}

// NewBaselineServer creates a server on the given core.
func NewBaselineServer(core *hw.Core) *BaselineServer {
	return &BaselineServer{core: core, data: map[string][]byte{}}
}

// ServerCore returns the core the server runs on.
func (s *BaselineServer) ServerCore() *hw.Core { return s.core }

// Handle processes one RESP request, charging the server core for the
// receive, parse, execute, and reply work.
func (s *BaselineServer) Handle(req []byte) []byte {
	sockMsg(s.core, len(req))
	s.core.AddCycles(serverLoop)
	args, err := DecodeCommand(req)
	if err != nil {
		return EncodeError(err.Error())
	}
	s.core.AddCycles(parseCycles)
	resp := s.exec(args)
	sockMsg(s.core, len(resp))
	return resp
}

func (s *BaselineServer) exec(args []string) []byte {
	if len(args) == 0 {
		return EncodeError("empty command")
	}
	s.core.AddCycles(execCycles)
	switch strings.ToUpper(args[0]) {
	case "GET":
		if len(args) != 2 {
			return EncodeWrongArity(args[0])
		}
		v, ok := s.data[args[1]]
		if !ok {
			return EncodeBulk(nil)
		}
		return EncodeBulk(v)
	case "SET":
		if len(args) != 3 {
			return EncodeWrongArity(args[0])
		}
		s.core.AddCycles(setPersist)
		s.data[args[1]] = []byte(args[2])
		return EncodeSimple("OK")
	case "DEL":
		if len(args) != 2 {
			return EncodeWrongArity(args[0])
		}
		if _, ok := s.data[args[1]]; ok {
			delete(s.data, args[1])
			return EncodeSimple("OK")
		}
		return EncodeBulk(nil)
	default:
		return EncodeUnknownCommand(args[0])
	}
}

// BaselineClient is a redis-benchmark-style client talking to one server
// over the modeled socket.
type BaselineClient struct {
	core   *hw.Core
	server *BaselineServer
}

// NewBaselineClient binds a client core to a server.
func NewBaselineClient(core *hw.Core, server *BaselineServer) *BaselineClient {
	return &BaselineClient{core: core, server: server}
}

// do sends one command and waits for the reply, charging client-side
// socket costs and the wait for the server's processing.
func (c *BaselineClient) do(args ...string) ([]byte, bool, error) {
	req := EncodeCommand(args...)
	c.core.AddCycles(parseCycles)
	sockMsg(c.core, len(req))
	before := c.server.core.Cycles()
	resp := c.server.Handle(req)
	c.core.AddCycles(c.server.core.Cycles() - before) // blocked on the reply
	sockMsg(c.core, len(resp))
	return DecodeReply(resp)
}

// Get issues a GET.
func (c *BaselineClient) Get(key string) ([]byte, bool, error) {
	v, isNil, err := c.do("GET", key)
	if err != nil {
		return nil, false, err
	}
	return v, !isNil, nil
}

// Set issues a SET.
func (c *BaselineClient) Set(key string, val []byte) error {
	_, _, err := c.do("SET", key, string(val))
	return err
}
