package redis

import (
	"hash/fnv"

	"spacejmp/internal/core"
)

// Slot-addressed operations for the cluster's placement layer. The key
// space is partitioned into a fixed number of slots by FNV-1a (the same
// hash the router used when placement was "hash mod len(nodes)"); the
// cluster's Placement implementation delegates here so the node-side copy
// path (DumpSlot on the source, replay on the target) and the router-side
// routing decision can never disagree about which slot a key is in.

// SlotForKey hashes a key onto one of nslots placement slots. This is the
// single placement hash in the tree — everything else goes through the
// cluster's Placement API, which calls this.
func SlotForKey(key string, nslots int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nslots))
}

// KV is one key/value pair streamed during a slot migration.
type KV struct {
	Key []byte
	Val []byte
}

// DumpSlot returns every key/value pair whose key hashes into slot (of
// nslots), read under the shared lock — the consistent snapshot a slot
// migration streams to the new owner. The caller serializes against
// writers the same way it does for any other command on this store.
func (c *Client) DumpSlot(slot, nslots int) ([]KV, error) {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.readH); err != nil {
		return nil, err
	}
	var out []KV
	err := c.store.ForEach(func(key, val []byte) error {
		if SlotForKey(string(key), nslots) == slot {
			out = append(out, KV{Key: key, Val: val})
		}
		return nil
	})
	if serr := c.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DelSlot removes every key in slot (of nslots) under the exclusive lock —
// the source-side cleanup after a migrated slot's ownership flipped.
// Returns how many keys were removed. Keys are collected before deletion;
// Del during a ForEach walk would relink chains under the iterator.
func (c *Client) DelSlot(slot, nslots int) (int, error) {
	c.th.Core.AddCycles(parseCycles)
	if err := c.th.VASSwitch(c.writeH); err != nil {
		return 0, err
	}
	var keys [][]byte
	err := c.store.ForEach(func(key, val []byte) error {
		if SlotForKey(string(key), nslots) == slot {
			keys = append(keys, key)
		}
		return nil
	})
	removed := 0
	if err == nil {
		for _, k := range keys {
			ok, derr := c.store.Del(k)
			if derr != nil {
				err = derr
				break
			}
			if ok {
				removed++
			}
		}
	}
	if serr := c.th.VASSwitch(core.PrimaryHandle); err == nil {
		err = serr
	}
	return removed, err
}
