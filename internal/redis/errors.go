package redis

import (
	"fmt"
	"strings"
)

// Typed RESP error replies. Redis convention puts a machine-readable code
// in the reply's first word ("-BUSY ...", "-MOVED ..."); the cluster layer
// follows it so the load generator and tests can match replies on sentinel
// errors instead of scraping message text. A decoded ReplyError matches a
// sentinel via errors.Is whenever its leading code word agrees — the
// human-readable tail (node ids, detail) is free to vary.
const (
	codeShardTimeout  = "SHARDTIMEOUT"
	codeShardDegraded = "SHARDDEGRADED"
	codeBusy          = "BUSY"
	codeMoved         = "MOVED"
	codeNoPerm        = "NOPERM"
	codeQuota         = "QUOTA"
	codeStale         = "STALE"
	codeDeadline      = "DEADLINE"
)

// Sentinel reply errors. Use errors.Is against a decoded ReplyError; use
// the Encode helpers to render the wire form with per-reply detail.
var (
	// ErrShardTimeout is a shard whose remote calls keep timing out — the
	// command may be retried once the range fails over or the node heals.
	ErrShardTimeout = ReplyError(codeShardTimeout + " shard timeout: node unreachable, retry")
	// ErrShardDegraded is a shard whose key range lost both its primary and
	// a recoverable replica image — retrying will not help.
	ErrShardDegraded = ReplyError(codeShardDegraded + " shard degraded: no recoverable replica")
	// ErrBusy is the serving layer's backpressure rejection.
	ErrBusy = ReplyError(codeBusy + " server busy, retry")
	// ErrMoved is a command that raced a slot migration's ownership flip —
	// the slot's keys now live on another node; retrying routes against the
	// new slot table.
	ErrMoved = ReplyError(codeMoved + " slot moved, retry")
	// ErrNoPerm is a capability denial: the connection's tenant holds no
	// capability covering the addressed view (paper §4.2 — a segment attach
	// outside the caller's ACL fails at the check, not as a missing key).
	// Terminal for the command; retrying cannot help.
	ErrNoPerm = ReplyError(codeNoPerm + " permission denied")
	// ErrQuota is a quota rejection at admission — the tenant is over its
	// byte, key, or command-rate budget. Terminal for the command.
	ErrQuota = ReplyError(codeQuota + " tenant quota exceeded")
	// ErrStale is a follower read refused because the node's freshest frozen
	// view exceeds the configured staleness bound. Not retryable by blind
	// re-send — the client should either accept fresh routing (READWRITE) or
	// wait for the next fork; the load generator counts these as explicit
	// bound enforcement, never as failures.
	ErrStale = ReplyError(codeStale + " follower view exceeds staleness bound")
	// ErrDeadline is a command refused or abandoned because its deadline
	// budget ran out — the router would not start (or finish) a dispatch it
	// cannot complete within the request's remaining cycle allowance.
	// Retryable: a fresh request carries a fresh budget.
	ErrDeadline = ReplyError(codeDeadline + " deadline budget exhausted, retry")
)

// Is makes errors.Is(reply, ErrShardTimeout) and friends match on the
// leading code word, so sentinel matching survives per-reply detail text.
func (e ReplyError) Is(target error) bool {
	t, ok := target.(ReplyError)
	if !ok {
		return false
	}
	switch t {
	case ErrShardTimeout, ErrShardDegraded, ErrBusy, ErrMoved, ErrNoPerm, ErrQuota, ErrStale, ErrDeadline:
		return replyCode(string(e)) == replyCode(string(t))
	}
	return string(e) == string(t)
}

func replyCode(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// EncodeShardTimeout renders the retryable shard-timeout reply for a node.
func EncodeShardTimeout(node int) []byte {
	return []byte(fmt.Sprintf("-%s shard timeout: node %d unreachable, retry\r\n", codeShardTimeout, node))
}

// EncodeShardDegraded renders the non-retryable degraded-range reply.
func EncodeShardDegraded(node int, detail string) []byte {
	return []byte(fmt.Sprintf("-%s node %d degraded: %s\r\n", codeShardDegraded, node, detail))
}

// EncodeBusy renders the serving layer's backpressure rejection.
func EncodeBusy(detail string) []byte {
	return []byte(fmt.Sprintf("-%s %s\r\n", codeBusy, detail))
}

// EncodeMoved renders the retryable slot-moved reply, in Redis cluster
// shape ("-MOVED <slot> <node>"): the command raced an ownership flip and
// should be retried — the router re-resolves against the new slot table.
func EncodeMoved(slot, node int) []byte {
	return []byte(fmt.Sprintf("-%s %d node-%d\r\n", codeMoved, slot, node))
}

// EncodeNoPerm renders the capability-denial reply. detail says which view
// the caller could not address, not whether the key exists there — a denial
// must be distinguishable from a miss.
func EncodeNoPerm(detail string) []byte {
	return []byte(fmt.Sprintf("-%s %s\r\n", codeNoPerm, detail))
}

// EncodeQuota renders the quota-rejection reply.
func EncodeQuota(detail string) []byte {
	return []byte(fmt.Sprintf("-%s %s\r\n", codeQuota, detail))
}

// EncodeStale renders the staleness-bound refusal for a follower read.
// detail carries the view's age and the bound, so a client can tell how far
// behind the follower was.
func EncodeStale(detail string) []byte {
	return []byte(fmt.Sprintf("-%s %s\r\n", codeStale, detail))
}

// EncodeDeadline renders the retryable deadline-budget refusal. detail says
// where the budget died (pre-dispatch refusal vs mid-call exhaustion) and
// against which node.
func EncodeDeadline(detail string) []byte {
	return []byte(fmt.Sprintf("-%s %s\r\n", codeDeadline, detail))
}

// IsRetryableReply reports whether an error reply asks the client to try
// again later (backpressure, a shard mid-failover, or a deadline budget
// that a fresh request would reset) rather than reporting a hard failure.
func IsRetryableReply(e ReplyError) bool {
	switch replyCode(string(e)) {
	case codeBusy, codeShardTimeout, codeMoved, codeDeadline:
		return true
	}
	return false
}
