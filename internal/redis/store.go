package redis

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/mspace"
)

// Store is the server state of RedisJMP: a chained hash table whose
// buckets, entries, and string data all live inside the lockable segment,
// addressed by segment virtual addresses. Any process that switches into
// the server VAS can operate on it directly — the paper's replacement for
// the Redis server process.
//
// Layout: a root pointer word sits at the segment base; the mspace heap
// starts one page in. All multi-byte data is stored in little-endian
// words through the Accessor (a thread's MMU-mediated loads and stores).
type Store struct {
	mem  mspace.Accessor
	heap *mspace.Space
	base arch.VirtAddr
	root arch.VirtAddr // header chunk
}

// Store header words.
const (
	hdrBuckets = 0  // VA of bucket array
	hdrNBkt    = 8  // number of buckets
	hdrCount   = 16 // number of entries
	hdrSize    = 24
)

// Entry words.
const (
	entNext   = 0
	entKeyPtr = 8
	entKeyLen = 16
	entValPtr = 24
	entValLen = 32
	entSize   = 40
)

const initialBuckets = 64

// heapOff is where the mspace begins inside the segment.
const heapOff = arch.PageSize

// CreateStore formats the segment at base as an empty store.
func CreateStore(mem mspace.Accessor, base arch.VirtAddr, size uint64) (*Store, error) {
	heap, err := mspace.Init(mem, base+heapOff, size-heapOff)
	if err != nil {
		return nil, err
	}
	s := &Store{mem: mem, heap: heap, base: base}
	root, err := heap.Alloc(hdrSize)
	if err != nil {
		return nil, err
	}
	s.root = root
	buckets, err := s.allocZeroed(initialBuckets * 8)
	if err != nil {
		return nil, err
	}
	s.put(root+hdrBuckets, uint64(buckets))
	s.put(root+hdrNBkt, initialBuckets)
	s.put(root+hdrCount, 0)
	s.put(base, uint64(root))
	return s, nil
}

// OpenStore attaches to a store created earlier (possibly by another
// process in an earlier lifetime).
func OpenStore(mem mspace.Accessor, base arch.VirtAddr) (*Store, error) {
	heap, err := mspace.Open(mem, base+heapOff)
	if err != nil {
		return nil, err
	}
	rootWord, err := mem.Load64(base)
	if err != nil {
		return nil, err
	}
	if rootWord == 0 {
		return nil, fmt.Errorf("redis: no store at %v", base)
	}
	return &Store{mem: mem, heap: heap, base: base, root: arch.VirtAddr(rootWord)}, nil
}

func (s *Store) get(va arch.VirtAddr) uint64 {
	v, err := s.mem.Load64(va)
	if err != nil {
		panic(fmt.Sprintf("redis: load %v: %v", va, err))
	}
	return v
}

func (s *Store) put(va arch.VirtAddr, v uint64) {
	if err := s.mem.Store64(va, v); err != nil {
		panic(fmt.Sprintf("redis: store %v: %v", va, err))
	}
}

func (s *Store) allocZeroed(n uint64) (arch.VirtAddr, error) {
	va, err := s.heap.Alloc(n)
	if err != nil {
		return 0, err
	}
	for off := uint64(0); off < n; off += 8 {
		s.put(va+arch.VirtAddr(off), 0)
	}
	return va, nil
}

// writeBytes stores b into segment memory word by word.
func (s *Store) writeBytes(va arch.VirtAddr, b []byte) {
	for off := 0; off < len(b); off += 8 {
		var w uint64
		for k := 0; k < 8 && off+k < len(b); k++ {
			w |= uint64(b[off+k]) << (8 * k)
		}
		s.put(va+arch.VirtAddr(off), w)
	}
}

// readBytes loads n bytes from segment memory.
func (s *Store) readBytes(va arch.VirtAddr, n uint64) []byte {
	out := make([]byte, n)
	for off := uint64(0); off < n; off += 8 {
		w := s.get(va + arch.VirtAddr(off))
		for k := uint64(0); k < 8 && off+k < n; k++ {
			out[off+k] = byte(w >> (8 * k))
		}
	}
	return out
}

// fnv1a hashes a key (computed in client code; only the table lives in
// segment memory).
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// guard converts inaccessible-memory panics (e.g. operating without being
// switched into the VAS) into errors.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("redis: store access failed: %v", r)
	}
}

// bucketFor returns the address of the bucket head slot for key.
func (s *Store) bucketFor(key []byte) arch.VirtAddr {
	n := s.get(s.root + hdrNBkt)
	buckets := arch.VirtAddr(s.get(s.root + hdrBuckets))
	return buckets + arch.VirtAddr((fnv1a(key)%n)*8)
}

// findEntry returns (entry, prevSlot) for key, entry == 0 if absent.
func (s *Store) findEntry(key []byte) (entry, prevSlot arch.VirtAddr) {
	slot := s.bucketFor(key)
	cur := arch.VirtAddr(s.get(slot))
	for cur != 0 {
		klen := s.get(cur + entKeyLen)
		if klen == uint64(len(key)) {
			kptr := arch.VirtAddr(s.get(cur + entKeyPtr))
			if string(s.readBytes(kptr, klen)) == string(key) {
				return cur, slot
			}
		}
		slot = cur + entNext
		cur = arch.VirtAddr(s.get(cur + entNext))
	}
	return 0, slot
}

// Get returns the value for key.
func (s *Store) Get(key []byte) (val []byte, ok bool, err error) {
	defer guard(&err)
	ent, _ := s.findEntry(key)
	if ent == 0 {
		return nil, false, nil
	}
	vptr := arch.VirtAddr(s.get(ent + entValPtr))
	vlen := s.get(ent + entValLen)
	return s.readBytes(vptr, vlen), true, nil
}

// Set inserts or replaces key's value.
func (s *Store) Set(key, val []byte) (err error) {
	defer guard(&err)
	ent, _ := s.findEntry(key)
	if ent != 0 {
		// Replace the value in place.
		old := arch.VirtAddr(s.get(ent + entValPtr))
		if err := s.heap.Free(old); err != nil {
			return err
		}
		vptr, err := s.heap.Alloc(uint64(len(val)))
		if err != nil {
			return err
		}
		s.writeBytes(vptr, val)
		s.put(ent+entValPtr, uint64(vptr))
		s.put(ent+entValLen, uint64(len(val)))
		return nil
	}
	kptr, err := s.heap.Alloc(uint64(len(key)))
	if err != nil {
		return err
	}
	s.writeBytes(kptr, key)
	vptr, err := s.heap.Alloc(uint64(len(val)))
	if err != nil {
		return err
	}
	s.writeBytes(vptr, val)
	e, err := s.heap.Alloc(entSize)
	if err != nil {
		return err
	}
	slot := s.bucketFor(key)
	s.put(e+entNext, s.get(slot))
	s.put(e+entKeyPtr, uint64(kptr))
	s.put(e+entKeyLen, uint64(len(key)))
	s.put(e+entValPtr, uint64(vptr))
	s.put(e+entValLen, uint64(len(val)))
	s.put(slot, uint64(e))
	s.put(s.root+hdrCount, s.get(s.root+hdrCount)+1)
	return nil
}

// Del removes key, reporting whether it was present.
func (s *Store) Del(key []byte) (found bool, err error) {
	defer guard(&err)
	ent, prevSlot := s.findEntry(key)
	if ent == 0 {
		return false, nil
	}
	s.put(prevSlot, s.get(ent+entNext))
	for _, w := range []arch.VirtAddr{entKeyPtr, entValPtr} {
		if err := s.heap.Free(arch.VirtAddr(s.get(ent + w))); err != nil {
			return false, err
		}
	}
	if err := s.heap.Free(ent); err != nil {
		return false, err
	}
	s.put(s.root+hdrCount, s.get(s.root+hdrCount)-1)
	return true, nil
}

// Len returns the number of entries.
func (s *Store) Len() (n uint64, err error) {
	defer guard(&err)
	return s.get(s.root + hdrCount), nil
}

// NeedRehash reports whether the table exceeds its load factor. Redis
// normally rehashes asynchronously; RedisJMP rehashes only while a client
// holds the exclusive lock (§5.3), so clients check this on the SET path.
func (s *Store) NeedRehash() (bool, error) {
	var err error
	defer guard(&err)
	n := s.get(s.root + hdrNBkt)
	count := s.get(s.root + hdrCount)
	return count > 4*n, err
}

// Rehash grows the bucket array fourfold and relinks every entry. Caller
// must hold the segment exclusively.
func (s *Store) Rehash() (err error) {
	defer guard(&err)
	oldN := s.get(s.root + hdrNBkt)
	oldBkts := arch.VirtAddr(s.get(s.root + hdrBuckets))
	newN := oldN * 4
	newBkts, err := s.allocZeroed(newN * 8)
	if err != nil {
		return err
	}
	// Install the new table first so bucketFor sees it while relinking.
	s.put(s.root+hdrBuckets, uint64(newBkts))
	s.put(s.root+hdrNBkt, newN)
	for i := uint64(0); i < oldN; i++ {
		cur := arch.VirtAddr(s.get(oldBkts + arch.VirtAddr(i*8)))
		for cur != 0 {
			next := arch.VirtAddr(s.get(cur + entNext))
			key := s.readBytes(arch.VirtAddr(s.get(cur+entKeyPtr)), s.get(cur+entKeyLen))
			slot := s.bucketFor(key)
			s.put(cur+entNext, s.get(slot))
			s.put(slot, uint64(cur))
			cur = next
		}
	}
	return s.heap.Free(oldBkts)
}
