package redis

import (
	"fmt"

	"spacejmp/internal/arch"
	"spacejmp/internal/mspace"
)

// Store is the server state of RedisJMP: a chained hash table whose
// buckets, entries, and string data all live inside the lockable segment,
// addressed by segment virtual addresses. Any process that switches into
// the server VAS can operate on it directly — the paper's replacement for
// the Redis server process.
//
// Layout: a root pointer word sits at the segment base; the mspace heap
// starts one page in. All multi-byte data is stored in little-endian
// words through the Accessor (a thread's MMU-mediated loads and stores).
// An access that faults (e.g. operating without being switched into the
// VAS, or from a dead process) is returned as an error from the failing
// operation — the store never panics.
type Store struct {
	mem  mspace.Accessor
	heap *mspace.Space
	base arch.VirtAddr
	root arch.VirtAddr // header chunk
}

// Store header words.
const (
	hdrBuckets = 0  // VA of bucket array
	hdrNBkt    = 8  // number of buckets
	hdrCount   = 16 // number of entries
	hdrSize    = 24
)

// Entry words.
const (
	entNext   = 0
	entKeyPtr = 8
	entKeyLen = 16
	entValPtr = 24
	entValLen = 32
	entSize   = 40
)

const initialBuckets = 64

// heapOff is where the mspace begins inside the segment.
const heapOff = arch.PageSize

// CreateStore formats the segment at base as an empty store.
func CreateStore(mem mspace.Accessor, base arch.VirtAddr, size uint64) (*Store, error) {
	heap, err := mspace.Init(mem, base+heapOff, size-heapOff)
	if err != nil {
		return nil, err
	}
	s := &Store{mem: mem, heap: heap, base: base}
	root, err := heap.Alloc(hdrSize)
	if err != nil {
		return nil, err
	}
	s.root = root
	buckets, err := s.allocZeroed(initialBuckets * 8)
	if err != nil {
		return nil, err
	}
	if err := s.put(root+hdrBuckets, uint64(buckets)); err != nil {
		return nil, err
	}
	if err := s.put(root+hdrNBkt, initialBuckets); err != nil {
		return nil, err
	}
	if err := s.put(root+hdrCount, 0); err != nil {
		return nil, err
	}
	if err := s.put(base, uint64(root)); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenStore attaches to a store created earlier (possibly by another
// process in an earlier lifetime).
func OpenStore(mem mspace.Accessor, base arch.VirtAddr) (*Store, error) {
	heap, err := mspace.Open(mem, base+heapOff)
	if err != nil {
		return nil, err
	}
	rootWord, err := mem.Load64(base)
	if err != nil {
		return nil, err
	}
	if rootWord == 0 {
		return nil, fmt.Errorf("redis: no store at %v", base)
	}
	return &Store{mem: mem, heap: heap, base: base, root: arch.VirtAddr(rootWord)}, nil
}

func (s *Store) get(va arch.VirtAddr) (uint64, error) {
	v, err := s.mem.Load64(va)
	if err != nil {
		return 0, fmt.Errorf("redis: load %v: %w", va, err)
	}
	return v, nil
}

func (s *Store) put(va arch.VirtAddr, v uint64) error {
	if err := s.mem.Store64(va, v); err != nil {
		return fmt.Errorf("redis: store %v: %w", va, err)
	}
	return nil
}

func (s *Store) allocZeroed(n uint64) (arch.VirtAddr, error) {
	va, err := s.heap.Alloc(n)
	if err != nil {
		return 0, err
	}
	for off := uint64(0); off < n; off += 8 {
		if err := s.put(va+arch.VirtAddr(off), 0); err != nil {
			return 0, err
		}
	}
	return va, nil
}

// writeBytes stores b into segment memory word by word.
func (s *Store) writeBytes(va arch.VirtAddr, b []byte) error {
	for off := 0; off < len(b); off += 8 {
		var w uint64
		for k := 0; k < 8 && off+k < len(b); k++ {
			w |= uint64(b[off+k]) << (8 * k)
		}
		if err := s.put(va+arch.VirtAddr(off), w); err != nil {
			return err
		}
	}
	return nil
}

// readBytes loads n bytes from segment memory.
func (s *Store) readBytes(va arch.VirtAddr, n uint64) ([]byte, error) {
	out := make([]byte, n)
	for off := uint64(0); off < n; off += 8 {
		w, err := s.get(va + arch.VirtAddr(off))
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < 8 && off+k < n; k++ {
			out[off+k] = byte(w >> (8 * k))
		}
	}
	return out, nil
}

// fnv1a hashes a key (computed in client code; only the table lives in
// segment memory).
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// bucketFor returns the address of the bucket head slot for key.
func (s *Store) bucketFor(key []byte) (arch.VirtAddr, error) {
	n, err := s.get(s.root + hdrNBkt)
	if err != nil {
		return 0, err
	}
	bkts, err := s.get(s.root + hdrBuckets)
	if err != nil {
		return 0, err
	}
	return arch.VirtAddr(bkts) + arch.VirtAddr((fnv1a(key)%n)*8), nil
}

// findEntry returns (entry, prevSlot) for key, entry == 0 if absent.
func (s *Store) findEntry(key []byte) (entry, prevSlot arch.VirtAddr, err error) {
	slot, err := s.bucketFor(key)
	if err != nil {
		return 0, 0, err
	}
	curWord, err := s.get(slot)
	if err != nil {
		return 0, 0, err
	}
	cur := arch.VirtAddr(curWord)
	for cur != 0 {
		klen, err := s.get(cur + entKeyLen)
		if err != nil {
			return 0, 0, err
		}
		if klen == uint64(len(key)) {
			kptr, err := s.get(cur + entKeyPtr)
			if err != nil {
				return 0, 0, err
			}
			k, err := s.readBytes(arch.VirtAddr(kptr), klen)
			if err != nil {
				return 0, 0, err
			}
			if string(k) == string(key) {
				return cur, slot, nil
			}
		}
		slot = cur + entNext
		if curWord, err = s.get(cur + entNext); err != nil {
			return 0, 0, err
		}
		cur = arch.VirtAddr(curWord)
	}
	return 0, slot, nil
}

// Get returns the value for key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	ent, _, err := s.findEntry(key)
	if err != nil {
		return nil, false, err
	}
	if ent == 0 {
		return nil, false, nil
	}
	vptr, err := s.get(ent + entValPtr)
	if err != nil {
		return nil, false, err
	}
	vlen, err := s.get(ent + entValLen)
	if err != nil {
		return nil, false, err
	}
	val, err := s.readBytes(arch.VirtAddr(vptr), vlen)
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Set inserts or replaces key's value.
func (s *Store) Set(key, val []byte) error {
	ent, _, err := s.findEntry(key)
	if err != nil {
		return err
	}
	if ent != 0 {
		// Replace the value in place.
		old, err := s.get(ent + entValPtr)
		if err != nil {
			return err
		}
		if err := s.heap.Free(arch.VirtAddr(old)); err != nil {
			return err
		}
		vptr, err := s.heap.Alloc(uint64(len(val)))
		if err != nil {
			return err
		}
		if err := s.writeBytes(vptr, val); err != nil {
			return err
		}
		if err := s.put(ent+entValPtr, uint64(vptr)); err != nil {
			return err
		}
		return s.put(ent+entValLen, uint64(len(val)))
	}
	kptr, err := s.heap.Alloc(uint64(len(key)))
	if err != nil {
		return err
	}
	if err := s.writeBytes(kptr, key); err != nil {
		return err
	}
	vptr, err := s.heap.Alloc(uint64(len(val)))
	if err != nil {
		return err
	}
	if err := s.writeBytes(vptr, val); err != nil {
		return err
	}
	e, err := s.heap.Alloc(entSize)
	if err != nil {
		return err
	}
	slot, err := s.bucketFor(key)
	if err != nil {
		return err
	}
	head, err := s.get(slot)
	if err != nil {
		return err
	}
	for _, w := range []struct {
		off arch.VirtAddr
		v   uint64
	}{
		{entNext, head},
		{entKeyPtr, uint64(kptr)},
		{entKeyLen, uint64(len(key))},
		{entValPtr, uint64(vptr)},
		{entValLen, uint64(len(val))},
	} {
		if err := s.put(e+w.off, w.v); err != nil {
			return err
		}
	}
	if err := s.put(slot, uint64(e)); err != nil {
		return err
	}
	count, err := s.get(s.root + hdrCount)
	if err != nil {
		return err
	}
	return s.put(s.root+hdrCount, count+1)
}

// Del removes key, reporting whether it was present.
func (s *Store) Del(key []byte) (bool, error) {
	ent, prevSlot, err := s.findEntry(key)
	if err != nil {
		return false, err
	}
	if ent == 0 {
		return false, nil
	}
	next, err := s.get(ent + entNext)
	if err != nil {
		return false, err
	}
	if err := s.put(prevSlot, next); err != nil {
		return false, err
	}
	for _, w := range []arch.VirtAddr{entKeyPtr, entValPtr} {
		ptr, err := s.get(ent + w)
		if err != nil {
			return false, err
		}
		if err := s.heap.Free(arch.VirtAddr(ptr)); err != nil {
			return false, err
		}
	}
	if err := s.heap.Free(ent); err != nil {
		return false, err
	}
	count, err := s.get(s.root + hdrCount)
	if err != nil {
		return false, err
	}
	if err := s.put(s.root+hdrCount, count-1); err != nil {
		return false, err
	}
	return true, nil
}

// Len returns the number of entries.
func (s *Store) Len() (uint64, error) {
	return s.get(s.root + hdrCount)
}

// ForEach walks every entry, calling fn(key, value) on each. A non-nil
// error from fn stops the walk and is returned. The caller must hold the
// segment at least shared for the duration; fn must not mutate the store
// (Set/Del during the walk would relink chains under the iterator — collect
// keys first, then mutate).
func (s *Store) ForEach(fn func(key, val []byte) error) error {
	n, err := s.get(s.root + hdrNBkt)
	if err != nil {
		return err
	}
	bktsWord, err := s.get(s.root + hdrBuckets)
	if err != nil {
		return err
	}
	bkts := arch.VirtAddr(bktsWord)
	for i := uint64(0); i < n; i++ {
		curWord, err := s.get(bkts + arch.VirtAddr(i*8))
		if err != nil {
			return err
		}
		cur := arch.VirtAddr(curWord)
		for cur != 0 {
			kptr, err := s.get(cur + entKeyPtr)
			if err != nil {
				return err
			}
			klen, err := s.get(cur + entKeyLen)
			if err != nil {
				return err
			}
			key, err := s.readBytes(arch.VirtAddr(kptr), klen)
			if err != nil {
				return err
			}
			vptr, err := s.get(cur + entValPtr)
			if err != nil {
				return err
			}
			vlen, err := s.get(cur + entValLen)
			if err != nil {
				return err
			}
			val, err := s.readBytes(arch.VirtAddr(vptr), vlen)
			if err != nil {
				return err
			}
			if err := fn(key, val); err != nil {
				return err
			}
			nextWord, err := s.get(cur + entNext)
			if err != nil {
				return err
			}
			cur = arch.VirtAddr(nextWord)
		}
	}
	return nil
}

// NeedRehash reports whether the table exceeds its load factor. Redis
// normally rehashes asynchronously; RedisJMP rehashes only while a client
// holds the exclusive lock (§5.3), so clients check this on the SET path.
func (s *Store) NeedRehash() (bool, error) {
	n, err := s.get(s.root + hdrNBkt)
	if err != nil {
		return false, err
	}
	count, err := s.get(s.root + hdrCount)
	if err != nil {
		return false, err
	}
	return count > 4*n, nil
}

// Rehash grows the bucket array fourfold and relinks every entry. Caller
// must hold the segment exclusively.
func (s *Store) Rehash() error {
	oldN, err := s.get(s.root + hdrNBkt)
	if err != nil {
		return err
	}
	oldWord, err := s.get(s.root + hdrBuckets)
	if err != nil {
		return err
	}
	oldBkts := arch.VirtAddr(oldWord)
	newN := oldN * 4
	newBkts, err := s.allocZeroed(newN * 8)
	if err != nil {
		return err
	}
	// Install the new table first so bucketFor sees it while relinking.
	if err := s.put(s.root+hdrBuckets, uint64(newBkts)); err != nil {
		return err
	}
	if err := s.put(s.root+hdrNBkt, newN); err != nil {
		return err
	}
	for i := uint64(0); i < oldN; i++ {
		curWord, err := s.get(oldBkts + arch.VirtAddr(i*8))
		if err != nil {
			return err
		}
		cur := arch.VirtAddr(curWord)
		for cur != 0 {
			nextWord, err := s.get(cur + entNext)
			if err != nil {
				return err
			}
			kptr, err := s.get(cur + entKeyPtr)
			if err != nil {
				return err
			}
			klen, err := s.get(cur + entKeyLen)
			if err != nil {
				return err
			}
			key, err := s.readBytes(arch.VirtAddr(kptr), klen)
			if err != nil {
				return err
			}
			slot, err := s.bucketFor(key)
			if err != nil {
				return err
			}
			head, err := s.get(slot)
			if err != nil {
				return err
			}
			if err := s.put(cur+entNext, head); err != nil {
				return err
			}
			if err := s.put(slot, uint64(cur)); err != nil {
				return err
			}
			cur = arch.VirtAddr(nextWord)
		}
	}
	return s.heap.Free(oldBkts)
}
