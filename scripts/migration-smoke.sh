#!/bin/sh
# Migration smoke test: run the two elastic-cluster scenarios end to end
# with their invariant checks — `elastic-add-remove` (a node joins mid-run,
# a fair share of placement slots migrates onto it under verifying load,
# then the same node is drained and retired; every command must verify,
# with only retryable -MOVED refusals allowed around the flips) and
# `migration-target-killed` (a slot migration pointed at a crashing node
# must abort and roll back, leaving the source authoritative and the
# failure counted exactly once).
#
# The add/remove scenario also round-trips through its JSON form, so the
# declarative surface of the new pseudo-points (cluster.node.add,
# cluster.node.remove, cluster.slot.migrate) is exercised too.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-chaos" ./cmd/spacejmp-chaos

echo "migration-smoke: elastic-add-remove (via JSON spec file)"
"$tmp/spacejmp-chaos" -scenario elastic-add-remove -dump > "$tmp/elastic.json"
"$tmp/spacejmp-chaos" -spec "$tmp/elastic.json" -quiet

echo "migration-smoke: migration-target-killed"
"$tmp/spacejmp-chaos" -scenario migration-target-killed -quiet

echo "migration-smoke: OK"
