#!/bin/sh
# Failover smoke test: boot a replicated 3-node cluster server, crash the
# remote shard node mid-load with -kill-node, and require the load
# generator to finish with zero verification failures while the health
# monitor promotes the warm standby. The final JSON snapshot must show at
# least one checkpoint ship and exactly one promotion — a monitor that
# never ships, or a router that keeps serving the dead primary, fails here
# even though a plain load test would pass.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/spacejmp-server" ./cmd/spacejmp-server
go build -o "$tmp/spacejmp-load" ./cmd/spacejmp-load

"$tmp/spacejmp-server" -addr 127.0.0.1:0 -cluster 3 -mode auto -workers 2 \
    -machine M1 -replicate -ship-every 16 -kill-node 2 -kill-after 300ms \
    -json 2>"$tmp/server.log" &
srv_pid=$!

addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$tmp/server.log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "failover-smoke: server never came up" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

# Enough pipelined load to straddle the 300ms kill: the generator verifies
# every GET against the key's deterministic value and exits nonzero on any
# mismatch or hard error reply, so surviving the crash is the assertion.
"$tmp/spacejmp-load" -addr "$addr" -conns 4 -pipeline 4 -n 512 \
    -set-percent 25 -mget 20 -keys 256

if ! grep -q "crashed node 2" "$tmp/server.log"; then
    echo "failover-smoke: kill-node never fired" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""

ships=$(grep -o '"ships": *[0-9]*' "$tmp/server.log" | head -1 | grep -o '[0-9]*$')
promotions=$(grep -o '"promotions": *[0-9]*' "$tmp/server.log" | head -1 | grep -o '[0-9]*$')
lost=$(grep -o '"lost_updates": *[0-9]*' "$tmp/server.log" | head -1 | grep -o '[0-9]*$')
echo "failover-smoke: ships=$ships promotions=$promotions lost_updates=$lost"
if [ -z "$ships" ] || [ "$ships" -eq 0 ]; then
    echo "failover-smoke: no checkpoint generation was ever shipped" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
if [ -z "$promotions" ] || [ "$promotions" -ne 1 ]; then
    echo "failover-smoke: expected exactly one standby promotion" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
if grep -q "leak check:" "$tmp/server.log"; then
    echo "failover-smoke: simulated frames leaked across failover" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
echo "failover-smoke: OK"
