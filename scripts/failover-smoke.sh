#!/bin/sh
# Failover smoke test, now phrased as a chaos scenario: `rolling-node-kills`
# boots a replicated 4-node cluster, crashes both remote shard nodes in
# sequence mid-load, and asserts the declared invariants — exactly two
# standby promotions (seen in both the counters and the trace ring), at
# least one checkpoint ship, zero lost updates, zero degraded ranges, zero
# verification failures, and a leak-free drain. A monitor that never ships,
# or a router that keeps serving a dead primary, fails here even though a
# plain load test would pass.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-chaos" ./cmd/spacejmp-chaos

"$tmp/spacejmp-chaos" -scenario rolling-node-kills -quiet
echo "failover-smoke: OK"
