#!/bin/sh
# Overload-protection smoke test against the real binaries: boot a
# replicated cluster with per-node circuit breakers armed, follower reads
# on, and a hair-trigger breaker threshold, then play a probe-drop window
# against node 2 (its data path stays healthy — a brownout, not a crash;
# the probe threshold is parked out of reach so failover never fires)
# while the verifying load generator runs every connection READONLY with a
# per-command deadline budget. The load must stay clean — retryable
# -SHARDTIMEOUT/-DEADLINE refusals are backpressure, not failures — and
# afterwards /stats must show the overload machinery actually ran: breaker
# trips AND recloses, writes shed fast, and reads degraded to bounded-stale
# frozen views instead of queueing behind the browned-out node.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=
trap 'test -n "$srv_pid" && kill "$srv_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-server" ./cmd/spacejmp-server
go build -o "$tmp/spacejmp-load" ./cmd/spacejmp-load

# Steps-only scenario for the live server: drop node 2's health probes for
# a long window (the server plays only the steps; shape comes from flags).
cat >"$tmp/brownout.json" <<'EOF'
{
  "name": "brownout-smoke",
  "description": "probe-drop window against node 2 for the smoke script",
  "machine": "small",
  "cluster": {
    "nodes": 3,
    "workers": 1,
    "locals": 2,
    "seg_size": 1048576,
    "replicate": true,
    "follower_reads": true,
    "stale_bound": "2s",
    "breakers": true,
    "breaker_threshold": 1,
    "breaker_cooldown": "25ms"
  },
  "load": {"conns": 4, "pipeline": 4, "requests": 1024},
  "steps": [
    {
      "point": "cluster.probe.drop",
      "target": 2,
      "policy": {"kind": "always"},
      "after": "200ms",
      "for": "10s"
    }
  ]
}
EOF

"$tmp/spacejmp-server" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -machine small -shards 1 -cluster 3 -seg 1048576 \
    -replicate -ship-every 4 -follower-reads -stale-bound 2s \
    -breakers -breaker-threshold 1 -breaker-cooldown 25ms \
    -probe-interval 5ms -probe-threshold 100000 \
    -deadline 250ms -scenario "$tmp/brownout.json" \
    2>"$tmp/server.log" &
srv_pid=$!

addr=
admin=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*listening on \([^ ]*\) .*/\1/p' "$tmp/server.log")
    admin=$(sed -n 's|.*admin on http://\([^ ]*\) .*|\1|p' "$tmp/server.log")
    [ -n "$addr" ] && [ -n "$admin" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "brownout-smoke: server died" >&2; cat "$tmp/server.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ] || [ -z "$admin" ]; then
    echo "brownout-smoke: server never came up" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

# The verifying run spans the probe-drop window: READONLY connections with
# versioned staleness probes (so degraded reads are bound-checked, not just
# counted) and a generous per-command deadline budget on every command.
"$tmp/spacejmp-load" -addr "$addr" -conns 4 -pipeline 4 -n 8192 \
    -set-percent 30 -keys 256 -value 64 \
    -stale-reads -stale-bound 4s -stale-check 8 \
    -deadline 250ms \
    >"$tmp/load.out"
cat "$tmp/load.out"
probes=$(sed -n 's/.*probes  \([0-9]*\).*/\1/p' "$tmp/load.out")
if [ -z "$probes" ] || [ "$probes" -eq 0 ]; then
    echo "brownout-smoke: no staleness probes ran" >&2
    exit 1
fi
violations=$(sed -n 's/.*violations  \([0-9]*\).*/\1/p' "$tmp/load.out")
if [ -z "$violations" ] || [ "$violations" -ne 0 ]; then
    echo "brownout-smoke: staleness-bound violations: ${violations:-unparsed}" >&2
    exit 1
fi

# The brownout must never promote: the node is slow, not dead.
curl -sf "http://$admin/healthz" | grep -q '"status":"ok"' || {
    echo "brownout-smoke: /healthz not ok (spurious failover?)" >&2; exit 1; }

# /stats must show the whole overload story: the breaker tripped AND
# reclosed under live traffic, open-breaker writes were shed fast, and
# reads degraded to stale views instead of queueing behind node 2.
curl -sf "http://$admin/stats" >"$tmp/stats.json"
grep -q '"breaker_opens": *[1-9]' "$tmp/stats.json" || {
    echo "brownout-smoke: /stats shows no breaker trips" >&2; exit 1; }
grep -q '"breaker_closes": *[1-9]' "$tmp/stats.json" || {
    echo "brownout-smoke: /stats shows no breaker recloses" >&2; exit 1; }
grep -q '"shed": *[1-9]' "$tmp/stats.json" || {
    echo "brownout-smoke: /stats shows no shed dispatches" >&2; exit 1; }
grep -q '"degraded_reads": *[1-9]' "$tmp/stats.json" || {
    echo "brownout-smoke: /stats shows no degraded reads" >&2; exit 1; }

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=
echo "brownout-smoke: OK"
