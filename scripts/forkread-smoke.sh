#!/bin/sh
# Fork/follower-read smoke test against the real binaries: boot a
# replicated cluster server with follower reads enabled and an aggressive
# ship cadence, then drive the load generator in -stale-reads mode — every
# connection goes READONLY and interleaves versioned staleness probes, so
# the run exits nonzero if a follower ever silently serves a value older
# than the bound. The write-heavy mix keeps checkpoint ships (and thus
# frozen-view forks) happening under live traffic the whole run. Afterwards
# the admin surface must show the fork machinery actually ran: forked
# views, follower-served reads, and off-mutex ship timings in /stats.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=
trap 'test -n "$srv_pid" && kill "$srv_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-server" ./cmd/spacejmp-server
go build -o "$tmp/spacejmp-load" ./cmd/spacejmp-load

"$tmp/spacejmp-server" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -machine small -shards 1 -cluster 3 -seg 1048576 \
    -replicate -ship-every 4 -follower-reads -stale-bound 250ms \
    2>"$tmp/server.log" &
srv_pid=$!

addr=
admin=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*listening on \([^ ]*\) .*/\1/p' "$tmp/server.log")
    admin=$(sed -n 's|.*admin on http://\([^ ]*\) .*|\1|p' "$tmp/server.log")
    [ -n "$addr" ] && [ -n "$admin" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "forkread-smoke: server died" >&2; cat "$tmp/server.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ] || [ -z "$admin" ]; then
    echo "forkread-smoke: server never came up" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

# The verifying run: exits nonzero on any mismatch, error, or a staleness-
# bound violation (a too-old version served without -STALE). The probe
# counter proves the bound was actually exercised, not just not violated.
"$tmp/spacejmp-load" -addr "$addr" -conns 4 -pipeline 4 -n 384 \
    -set-percent 60 -keys 256 -value 64 \
    -stale-reads -stale-bound 2s -stale-check 8 \
    >"$tmp/load.out"
cat "$tmp/load.out"
probes=$(sed -n 's/.*probes  \([0-9]*\).*/\1/p' "$tmp/load.out")
if [ -z "$probes" ] || [ "$probes" -eq 0 ]; then
    echo "forkread-smoke: no staleness probes ran" >&2
    exit 1
fi
violations=$(sed -n 's/.*violations  \([0-9]*\).*/\1/p' "$tmp/load.out")
if [ -z "$violations" ] || [ "$violations" -ne 0 ]; then
    echo "forkread-smoke: staleness-bound violations: ${violations:-unparsed}" >&2
    exit 1
fi

# The admin surface must agree that shipping went through frozen forks and
# reads were served from them.
curl -sf "http://$admin/healthz" | grep -q '"status":"ok"' || {
    echo "forkread-smoke: /healthz not ok" >&2; exit 1; }
curl -sf "http://$admin/stats" >"$tmp/stats.json"
grep -q '"forks": *[1-9]' "$tmp/stats.json" || {
    echo "forkread-smoke: /stats shows no frozen-view forks" >&2; exit 1; }
grep -q '"follower_reads": *[1-9]' "$tmp/stats.json" || {
    echo "forkread-smoke: /stats shows no follower-served reads" >&2; exit 1; }
grep -q '"ships": *[1-9]' "$tmp/stats.json" || {
    echo "forkread-smoke: /stats shows no checkpoint ships" >&2; exit 1; }

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=
echo "forkread-smoke: OK"
