#!/bin/sh
# Tier-1 gate: everything a change must pass before merging.
# Run from the repo root: ./scripts/check.sh
set -e

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== deprecated API gate =="
# SegAllocPages is deprecated; the only call allowed is the wrapper's own
# declaration in internal/core/system.go. Everything else must use
# SegAlloc(..., WithPageSize(...)).
offenders=$(grep -rn "SegAllocPages" --include='*.go' . | grep -v "^./internal/core/system.go:" || true)
if [ -n "$offenders" ]; then
    echo "deprecated SegAllocPages used outside its wrapper:" >&2
    echo "$offenders" >&2
    exit 1
fi

# NodeFor is deprecated: placement goes through the slot table (Slot/Owner/
# Table on the Placement interface). The only mentions allowed are the
# wrapper's own declaration in internal/cluster/placement.go and the test
# that pins its equivalence.
offenders=$(grep -rn "NodeFor" --include='*.go' . \
    | grep -v "^./internal/cluster/placement.go:" \
    | grep -v "^./internal/cluster/migrate_test.go:" || true)
if [ -n "$offenders" ]; then
    echo "deprecated NodeFor used outside its wrapper:" >&2
    echo "$offenders" >&2
    exit 1
fi

# The slot-table is the single placement authority: nobody outside the
# placement implementation may hash a key straight onto a node count.
offenders=$(grep -rn "fnv" --include='*.go' ./internal/cluster ./internal/server ./internal/chaos || true)
if [ -n "$offenders" ]; then
    echo "direct key hashing outside the placement implementation:" >&2
    echo "$offenders" >&2
    exit 1
fi

# Checkpoint shipping goes through frozen COW forks: the primary forks a
# view under the node mutex (an O(pages) frame swap), then extracts and
# ships the image off-mutex while it keeps serving. The old path — a
# CLUSTER.SHIP command whose reply carried the whole image out from under
# the held mutex — must not come back; its tokens are banned.
offenders=$(grep -rn "shipReply\|CLUSTER\.SHIP\|shipWire" --include='*.go' . || true)
if [ -n "$offenders" ]; then
    echo "mutex-held ship path resurrected (ship through internal/fork instead):" >&2
    echo "$offenders" >&2
    exit 1
fi

# Store construction in the serving layers goes through NewClientNamed so
# every shard carries its node's namespace (and a tenant view is just a
# prefix inside it). A bare redis.NewClient would silently collapse all
# nodes onto the default store names.
offenders=$(grep -rn "redis\.NewClient(" --include='*.go' ./internal/server ./internal/cluster || true)
if [ -n "$offenders" ]; then
    echo "direct redis.NewClient in serving code (use NewClientNamed):" >&2
    echo "$offenders" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (RESP parser) =="
go test -run Fuzz -fuzz=FuzzReadCommand -fuzztime=10s ./internal/redis

echo "== fuzz smoke (chaos scenario parser) =="
go test -run Fuzz -fuzz=FuzzParseSpec -fuzztime=10s ./internal/chaos

echo "== fuzz smoke (tenant admission) =="
go test -run Fuzz -fuzz=FuzzAuthCommand -fuzztime=10s ./internal/server

echo "== cluster smoke (baseline scenario, both serving paths) =="
./scripts/cluster-smoke.sh

echo "== failover smoke (rolling node kills, standbys promote) =="
./scripts/failover-smoke.sh

echo "== chaos smoke (kills + partition, invariant-checked) =="
./scripts/chaos-smoke.sh

echo "== migration smoke (elastic add/remove + slot moves under traffic) =="
./scripts/migration-smoke.sh

echo "== tenant smoke (AUTH, cross-view denial, quotas in /stats) =="
./scripts/tenant-smoke.sh

echo "== forkread smoke (fork-based ships + bounded-stale follower reads) =="
./scripts/forkread-smoke.sh

echo "== brownout smoke (breaker trips, writes shed, reads degrade to stale views) =="
./scripts/brownout-smoke.sh

echo "OK"
