#!/bin/sh
# Tier-1 gate: everything a change must pass before merging.
# Run from the repo root: ./scripts/check.sh
set -e

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== deprecated API gate =="
# SegAllocPages is deprecated; the only call allowed is the wrapper's own
# declaration in internal/core/system.go. Everything else must use
# SegAlloc(..., WithPageSize(...)).
offenders=$(grep -rn "SegAllocPages" --include='*.go' . | grep -v "^./internal/core/system.go:" || true)
if [ -n "$offenders" ]; then
    echo "deprecated SegAllocPages used outside its wrapper:" >&2
    echo "$offenders" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (RESP parser) =="
go test -run Fuzz -fuzz=FuzzReadCommand -fuzztime=10s ./internal/redis

echo "== fuzz smoke (chaos scenario parser) =="
go test -run Fuzz -fuzz=FuzzParseSpec -fuzztime=10s ./internal/chaos

echo "== cluster smoke (baseline scenario, both serving paths) =="
./scripts/cluster-smoke.sh

echo "== failover smoke (rolling node kills, standbys promote) =="
./scripts/failover-smoke.sh

echo "== chaos smoke (kills + partition, invariant-checked) =="
./scripts/chaos-smoke.sh

echo "OK"
