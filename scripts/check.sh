#!/bin/sh
# Tier-1 gate: everything a change must pass before merging.
# Run from the repo root: ./scripts/check.sh
set -e

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
