#!/bin/sh
# Chaos smoke test: run the two headline disruption scenarios end to end
# with their invariant checks — `rolling-node-kills` (both remote replicated
# nodes crash in sequence; each warm standby must promote with zero lost
# updates while the load keeps verifying) and `partition-then-heal` (every
# urpc frame is dropped for a 250ms window; during it remote commands may
# only fail as retryable refusals, and after the heal the same keys must
# still verify). Each run also streams its own /stats/delta long-poll and
# requires at least one delta per scenario step.
#
# A JSON scenario file round-trips through the driver on the way: the
# partition scenario is dumped with -dump and re-run via -spec, so the
# declarative file format itself is exercised, not just the Go structs.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-chaos" ./cmd/spacejmp-chaos

echo "chaos-smoke: rolling-node-kills"
"$tmp/spacejmp-chaos" -scenario rolling-node-kills -quiet

echo "chaos-smoke: partition-then-heal (via JSON spec file)"
"$tmp/spacejmp-chaos" -scenario partition-then-heal -dump > "$tmp/partition.json"
"$tmp/spacejmp-chaos" -spec "$tmp/partition.json" -quiet

echo "chaos-smoke: OK"
