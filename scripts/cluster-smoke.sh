#!/bin/sh
# Cluster smoke test, now phrased as a chaos scenario: `cluster-baseline`
# boots a 3-node cluster in auto mode (shared-VAS fast path and urpc
# channels both live), drives the verifying load generator with an
# MGET-heavy mix over real TCP, and asserts its invariants — commands
# served on BOTH paths (min_local/min_remote), zero mismatches, zero
# terminal errors, and a leak-free zero-goroutine drain. A routing bug
# that silently sends everything local would pass a plain load test and
# fail here. The runner also long-polls its own /stats/delta stream, so
# the admin surface is exercised on every smoke.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-chaos" ./cmd/spacejmp-chaos

"$tmp/spacejmp-chaos" -scenario cluster-baseline -quiet
echo "cluster-smoke: OK"
