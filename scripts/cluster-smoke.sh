#!/bin/sh
# Cluster smoke test: boot a 3-node cluster server in auto mode (so the
# shared-VAS fast path and the urpc channels are both live), drive the load
# generator with an MGET-heavy mix over real TCP, drain via SIGTERM, and
# assert from the final JSON snapshot that commands were served on BOTH
# paths — a routing bug that silently sends everything local would pass a
# plain load test and fail here.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/spacejmp-server" ./cmd/spacejmp-server
go build -o "$tmp/spacejmp-load" ./cmd/spacejmp-load

"$tmp/spacejmp-server" -addr 127.0.0.1:0 -cluster 3 -mode auto -workers 2 \
    -machine M1 -json 2>"$tmp/server.log" &
srv_pid=$!

addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$tmp/server.log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "cluster-smoke: server never came up" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

"$tmp/spacejmp-load" -addr "$addr" -conns 8 -pipeline 4 -n 128 \
    -set-percent 20 -mget 30

kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""

# The snapshot's cluster object leads with its aggregate counters, so the
# first "local"/"remote" hits are the cluster-wide totals.
local_cmds=$(grep -o '"local": *[0-9]*' "$tmp/server.log" | head -1 | grep -o '[0-9]*$')
remote_cmds=$(grep -o '"remote": *[0-9]*' "$tmp/server.log" | head -1 | grep -o '[0-9]*$')
echo "cluster-smoke: local=$local_cmds remote=$remote_cmds"
if [ -z "$local_cmds" ] || [ "$local_cmds" -eq 0 ]; then
    echo "cluster-smoke: no commands took the shared-VAS fast path" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
if [ -z "$remote_cmds" ] || [ "$remote_cmds" -eq 0 ]; then
    echo "cluster-smoke: no commands crossed a urpc channel" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
echo "cluster-smoke: OK"
