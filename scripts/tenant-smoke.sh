#!/bin/sh
# Multi-tenant smoke test against the real binaries: boot spacejmp-server
# with two demo tenants and a small per-tenant key quota, drive the load
# generator in tenant mode (every connection AUTHs, values are verified
# against the tenant-qualified key, and periodic probes GET the other
# tenant's view), then read the admin surface. The run passes only if the
# cross-view probes were denied with -NOPERM (the load generator exits
# nonzero on any leak), the key quota produced rejections once the
# keyspace outgrew it, and those rejections are visible as nonzero
# quota_rejections in /stats and /tenants.
set -e

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=
trap 'test -n "$srv_pid" && kill "$srv_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

go build -o "$tmp/spacejmp-server" ./cmd/spacejmp-server
go build -o "$tmp/spacejmp-load" ./cmd/spacejmp-load

"$tmp/spacejmp-server" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -machine small -shards 2 -tenants 2 -tenant-max-keys 24 \
    2>"$tmp/server.log" &
srv_pid=$!

addr=
admin=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*listening on \([^ ]*\) .*/\1/p' "$tmp/server.log")
    admin=$(sed -n 's|.*admin on http://\([^ ]*\) .*|\1|p' "$tmp/server.log")
    [ -n "$addr" ] && [ -n "$admin" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "tenant-smoke: server died" >&2; cat "$tmp/server.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ] || [ -z "$admin" ]; then
    echo "tenant-smoke: server never came up" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

# Phase 1: both views inside quota. Exits nonzero on any mismatch, error,
# or cross-view leak; the probe counter proves isolation was actually hit.
"$tmp/spacejmp-load" -addr "$addr" -conns 4 -pipeline 4 -n 192 \
    -set-percent 40 -keys 16 -value 32 -tenants 2 -auth -cross-check 8 \
    >"$tmp/load1.out"
cat "$tmp/load1.out"
denied=$(sed -n 's/.*cross-denied  \([0-9]*\).*/\1/p' "$tmp/load1.out")
if [ -z "$denied" ] || [ "$denied" -eq 0 ]; then
    echo "tenant-smoke: no cross-view probes were denied" >&2
    exit 1
fi

# Phase 2: a keyspace four times the quota. Rejections are admission
# answers, not errors, so the run still verifies clean — but the counter
# must move.
"$tmp/spacejmp-load" -addr "$addr" -conns 4 -pipeline 4 -n 192 \
    -set-percent 40 -keys 96 -value 32 -tenants 2 -auth -cross-check 8 \
    >"$tmp/load2.out"
cat "$tmp/load2.out"
rejected=$(sed -n 's/.*quota-rejected  \([0-9]*\).*/\1/p' "$tmp/load2.out")
if [ -z "$rejected" ] || [ "$rejected" -eq 0 ]; then
    echo "tenant-smoke: quota never rejected anything" >&2
    exit 1
fi

# The admin surface must agree: per-tenant blocks in /stats carry the
# rejections, and /tenants lists both views with their usage.
curl -sf "http://$admin/healthz" | grep -q '"status":"ok"' || {
    echo "tenant-smoke: /healthz not ok" >&2; exit 1; }
curl -sf "http://$admin/stats" >"$tmp/stats.json"
grep -q '"quota_rejections": *[1-9]' "$tmp/stats.json" || {
    echo "tenant-smoke: /stats shows no quota rejections" >&2; exit 1; }
curl -sf "http://$admin/tenants" >"$tmp/tenants.json"
grep -q '"t0"' "$tmp/tenants.json" && grep -q '"t1"' "$tmp/tenants.json" || {
    echo "tenant-smoke: /tenants missing a demo tenant" >&2; exit 1; }
grep -q '"quota_rejections": *[1-9]' "$tmp/tenants.json" || {
    echo "tenant-smoke: /tenants shows no quota rejections" >&2; exit 1; }

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=
echo "tenant-smoke: OK"
