package spacejmp

// End-to-end scenarios through the public API, crossing every layer:
// personalities, VAS/segment lifecycle, switching, locking, snapshots, and
// persistence. Run with -race: the concurrent scenarios exercise the
// locking and shootdown paths under the race detector.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"spacejmp/internal/arch"
	"spacejmp/internal/mspace"
)

func segAt(i int) VirtAddr {
	return GlobalBase + VirtAddr(uint64(i)*arch.LevelCoverage(3))
}

func newThread(t *testing.T, sys *System, uid uint32) *Thread {
	t.Helper()
	proc, err := sys.NewProcess(Creds{UID: uid, GID: 100})
	if err != nil {
		t.Fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestBothPersonalitiesRunTheSameWorkload(t *testing.T) {
	run := func(t *testing.T, sys *System) {
		th := newThread(t, sys, 1)
		vid, err := th.VASCreate("wl", 0o660)
		if err != nil {
			t.Fatal(err)
		}
		sid, err := th.SegAlloc("wl.seg", segAt(0), 1<<20, PermRW)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.SegAttachVAS(vid, sid, PermRW); err != nil {
			t.Fatal(err)
		}
		h, err := th.VASAttach(vid)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			if err := th.VASSwitch(h); err != nil {
				t.Fatal(err)
			}
			if err := th.Store64(segAt(0)+VirtAddr(round*8), uint64(round)); err != nil {
				t.Fatal(err)
			}
			if err := th.VASSwitch(PrimaryHandle); err != nil {
				t.Fatal(err)
			}
		}
		if err := th.VASSwitch(h); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			if v, _ := th.Load64(segAt(0) + VirtAddr(round*8)); v != uint64(round) {
				t.Errorf("word %d = %d", round, v)
			}
		}
	}
	t.Run("dragonfly", func(t *testing.T) { run(t, NewDragonFly(DefaultMachine())) })
	t.Run("barrelfish", func(t *testing.T) {
		sys, _ := NewBarrelfish(DefaultMachine())
		run(t, sys)
	})
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	sys := NewDragonFly(DefaultMachine())
	boot := newThread(t, sys, 1)
	sid, err := boot.SegAlloc("c.seg", segAt(0), 1<<20, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	rv, _ := boot.VASCreate("c.read", 0o666)
	if err := boot.SegAttachVAS(rv, sid, PermRead); err != nil {
		t.Fatal(err)
	}
	wv, _ := boot.VASCreate("c.write", 0o666)
	if err := boot.SegAttachVAS(wv, sid, PermRW); err != nil {
		t.Fatal(err)
	}

	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	// Writer increments a counter under the exclusive lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := newThread(t, sys, 2)
		h, err := th.VASAttach(wv)
		if err != nil {
			errs <- err
			return
		}
		for i := 0; i < perWorker; i++ {
			if err := th.VASSwitch(h); err != nil {
				errs <- err
				return
			}
			v, _ := th.Load64(segAt(0))
			if err := th.Store64(segAt(0), v+1); err != nil {
				errs <- err
				return
			}
			if err := th.VASSwitch(PrimaryHandle); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Readers watch the counter; it must never decrease and each read
	// happens under the shared lock.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(uid uint32) {
			defer wg.Done()
			th := newThread(t, sys, uid)
			h, err := th.VASAttach(rv)
			if err != nil {
				errs <- err
				return
			}
			var last uint64
			for i := 0; i < perWorker; i++ {
				if err := th.VASSwitch(h); err != nil {
					errs <- err
					return
				}
				v, err := th.Load64(segAt(0))
				if err != nil {
					errs <- err
					return
				}
				if v < last {
					errs <- fmt.Errorf("counter went backwards: %d -> %d", last, v)
					return
				}
				last = v
				if err := th.VASSwitch(PrimaryHandle); err != nil {
					errs <- err
					return
				}
			}
		}(uint32(10 + r))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Final value is exactly the writer's increments (lock correctness).
	th := newThread(t, sys, 99)
	h, err := th.VASAttach(wv)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segAt(0)); v != perWorker {
		t.Errorf("final counter = %d, want %d", v, perWorker)
	}
}

func TestConcurrentDisjointVASes(t *testing.T) {
	// Many threads, each with a private VAS over a private segment at the
	// SAME virtual address, hammering concurrently: exercises per-core
	// TLBs, page tables, and the shared registries under -race.
	sys := NewDragonFly(DefaultMachine())
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := newThread(t, sys, uint32(w+1))
			vid, err := th.VASCreate(fmt.Sprintf("dj.%d", w), 0o600)
			if err != nil {
				errs <- err
				return
			}
			sid, err := th.SegAlloc(fmt.Sprintf("dj.seg%d", w), segAt(w), 1<<20, PermRW)
			if err != nil {
				errs <- err
				return
			}
			if err := th.SegAttachVAS(vid, sid, PermRW); err != nil {
				errs <- err
				return
			}
			h, err := th.VASAttach(vid)
			if err != nil {
				errs <- err
				return
			}
			if err := th.VASSwitch(h); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 200; i++ {
				va := segAt(w) + VirtAddr((i%64)*8)
				if err := th.Store64(va, uint64(w*1000+i)); err != nil {
					errs <- err
					return
				}
				if v, _ := th.Load64(va); v != uint64(w*1000+i) {
					errs <- fmt.Errorf("worker %d read %d", w, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSnapshotWorkflowPublicAPI(t *testing.T) {
	sys := NewDragonFly(DefaultMachine())
	th := newThread(t, sys, 1)
	vid, _ := th.VASCreate("base", 0o660)
	sid, _ := th.SegAlloc("base.seg", segAt(0), 1<<20, PermRW)
	if err := th.SegAttachVAS(vid, sid, PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segAt(0), 1); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	// Take two successive snapshots with diverging writes.
	s1, err := th.VASSnapshot(vid, "v1")
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := th.VASAttach(s1)
	if err := th.VASSwitch(h1); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segAt(0), 11); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	s2, err := th.VASSnapshot(vid, "v2")
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := th.VASAttach(s2)
	if err := th.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load64(segAt(0)); v != 1 {
		t.Errorf("v2 sees %d, want base value 1", v)
	}
	if err := th.Store64(segAt(0), 22); err != nil {
		t.Fatal(err)
	}
	// Three diverged views of the same address.
	expect := map[Handle]uint64{h: 1, h1: 11, h2: 22}
	for hh, want := range expect {
		if err := th.VASSwitch(hh); err != nil {
			t.Fatal(err)
		}
		if v, _ := th.Load64(segAt(0)); v != want {
			t.Errorf("handle %d sees %d, want %d", hh, v, want)
		}
	}
}

func TestHeapAcrossPersonalities(t *testing.T) {
	// The runtime allocator works identically under both personalities.
	for _, boot := range []func() *System{
		func() *System { return NewDragonFly(DefaultMachine()) },
		func() *System { s, _ := NewBarrelfish(DefaultMachine()); return s },
	} {
		sys := boot()
		th := newThread(t, sys, 1)
		vid, _ := th.VASCreate("heap", 0o660)
		sid, _ := th.SegAlloc("heap.seg", segAt(0), 1<<20, PermRW)
		if err := th.SegAttachVAS(vid, sid, PermRW); err != nil {
			t.Fatal(err)
		}
		h, _ := th.VASAttach(vid)
		if err := th.VASSwitch(h); err != nil {
			t.Fatal(err)
		}
		alloc := mspace.NewVASAllocator(th)
		if _, err := alloc.InitHeap(h, segAt(0), 1<<20); err != nil {
			t.Fatal(err)
		}
		var ptrs []VirtAddr
		for i := 0; i < 20; i++ {
			p, err := alloc.Malloc(uint64(16 + i*8))
			if err != nil {
				t.Fatal(err)
			}
			if err := th.Store64(p, uint64(i)); err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		for i, p := range ptrs {
			if v, _ := th.Load64(p); v != uint64(i) {
				t.Errorf("%s: alloc %d holds %d", sys.P.Name(), i, v)
			}
		}
	}
}

func TestErrorTaxonomy(t *testing.T) {
	sys := NewDragonFly(DefaultMachine())
	th := newThread(t, sys, 1)
	if _, err := th.VASFind("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("find missing: %v", err)
	}
	if _, err := th.SegAlloc("low", 0x1000, 1<<20, PermRW); !errors.Is(err, ErrLayout) {
		t.Errorf("layout: %v", err)
	}
	vid, _ := th.VASCreate("dup", 0o600)
	if _, err := th.VASCreate("dup", 0o600); !errors.Is(err, ErrExists) {
		t.Errorf("dup: %v", err)
	}
	stranger := newThread(t, sys, 999)
	if _, err := stranger.VASAttach(vid); !errors.Is(err, ErrDenied) {
		t.Errorf("denied: %v", err)
	}
}

func TestRebootWorkflowPublicAPI(t *testing.T) {
	cfg := DefaultMachine()
	cfg.Mem.NVMSuperblock = 1 << 20
	machine := NewMachine(cfg)
	sys := NewDragonFlyOn(machine)
	sys.SetSegmentTier(TierNVM)
	th := newThread(t, sys, 1)
	vid, _ := th.VASCreate("boot.vas", 0o666)
	sid, _ := th.SegAlloc("boot.seg", segAt(0), 1<<20, PermRW)
	if err := th.SegAttachVAS(vid, sid, PermRW); err != nil {
		t.Fatal(err)
	}
	h, _ := th.VASAttach(vid)
	if err := th.VASSwitch(h); err != nil {
		t.Fatal(err)
	}
	if err := th.Store64(segAt(0), 31415); err != nil {
		t.Fatal(err)
	}
	if err := th.VASSwitch(PrimaryHandle); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	machine.PM.PowerCycle()
	sys2 := NewDragonFlyOn(machine)
	if err := sys2.Restore(); err != nil {
		t.Fatal(err)
	}
	th2 := newThread(t, sys2, 1)
	found, err := th2.VASFind("boot.vas")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := th2.VASAttach(found)
	if err != nil {
		t.Fatal(err)
	}
	if err := th2.VASSwitch(h2); err != nil {
		t.Fatal(err)
	}
	if v, _ := th2.Load64(segAt(0)); v != 31415 {
		t.Errorf("after reboot: %d", v)
	}
}
