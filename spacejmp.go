// Package spacejmp is a Go reproduction of "SpaceJMP: Programming with
// Multiple Virtual Address Spaces" (El Hajj et al., ASPLOS 2016): an
// operating-system design that promotes virtual address spaces (VASes) to
// first-class objects, letting process threads attach to, detach from, and
// switch between multiple address spaces, with lockable segments as the
// unit of sharing.
//
// Because a user-space Go process cannot rewrite CR3, the whole machine is
// simulated: physical memory, four-level page tables, a tagged TLB, and a
// deterministic cycle cost model calibrated to the paper's measurements.
// Two OS personalities reproduce the paper's prototypes — a DragonFly
// BSD-style kernel implementation with ACLs, and a Barrelfish-style
// user-space implementation over typed capabilities.
//
// # Quick start
//
//	sys := spacejmp.NewDragonFly(spacejmp.DefaultMachine())
//	proc, _ := sys.NewProcess(spacejmp.Creds{UID: 1000, GID: 1000})
//	th, _ := proc.NewThread()
//
//	vid, _ := th.VASCreate("v0", 0o660)
//	sid, _ := th.SegAlloc("s0", spacejmp.GlobalBase, 1<<24, spacejmp.PermRW)
//	_ = th.SegAttachVAS(vid, sid, spacejmp.PermRW)
//
//	vh, _ := th.VASAttach(vid)
//	_ = th.VASSwitch(vh)
//	_ = th.Store64(spacejmp.GlobalBase, 42) // *t = 42, inside the VAS
//	_ = th.VASSwitch(spacejmp.PrimaryHandle)
//
// The runtime heap (package mspace), the unsafe-pointer compiler analysis
// (package safety, §4.3), and the paper's three applications (GUPS,
// RedisJMP, SAMTools) live under internal/; the examples/ directory shows
// the public API on each of the paper's motivating scenarios.
package spacejmp

import (
	"spacejmp/internal/arch"
	"spacejmp/internal/caps"
	"spacejmp/internal/core"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/mem"
	"spacejmp/internal/stats"
	"spacejmp/internal/tlb"
)

// Core object model: VASes, segments, processes, threads (see paper §3).
type (
	// System is a booted SpaceJMP OS instance on a simulated machine.
	System = core.System
	// Process is a SpaceJMP-aware process (common region + attachments).
	Process = core.Process
	// Thread is an execution context; all API calls are made by threads.
	Thread = core.Thread
	// VAS is a first-class virtual address space.
	VAS = core.VAS
	// Segment is a lockable, named, fixed-address memory segment.
	Segment = core.Segment
	// VASID names a VAS system-wide.
	VASID = core.VASID
	// SegID names a segment system-wide.
	SegID = core.SegID
	// Handle identifies one process's attachment to a VAS.
	Handle = core.Handle
	// Creds identify a subject to the personality's security model.
	Creds = core.Creds
	// VASCmd is a typed vas_ctl command (SetTag, ClearTag, SetMode).
	VASCmd = core.VASCmd
	// SegCmd is a typed seg_ctl command (SetPerm, SetLockable,
	// CacheTranslations).
	SegCmd = core.SegCmd
	// SegOption configures SegAlloc (WithPageSize, WithTier, WithLockable).
	SegOption = core.SegOption

	// MachineConfig describes the simulated platform.
	MachineConfig = hw.MachineConfig
	// Machine is a booted simulated platform.
	Machine = hw.Machine

	// Perm is a memory permission set.
	Perm = arch.Perm
	// VirtAddr is a simulated virtual address.
	VirtAddr = arch.VirtAddr
)

// Permissions.
const (
	PermRead  = arch.PermRead
	PermWrite = arch.PermWrite
	PermExec  = arch.PermExec
	PermRW    = arch.PermRW
)

// PrimaryHandle addresses a process's original address space in VASSwitch.
const PrimaryHandle = core.PrimaryHandle

// GlobalBase is the lowest address a global segment may occupy; segment
// bases must be at or above it (paper §4.1's disjoint private/global
// ranges).
const GlobalBase = core.GlobalBase

// Typed vas_ctl / seg_ctl command constructors and SegAlloc options. An
// ill-typed ctl argument is a compile error, not a runtime one.
var (
	SetTag            = core.SetTag
	ClearTag          = core.ClearTag
	SetMode           = core.SetMode
	SetPerm           = core.SetPerm
	SetLockable       = core.SetLockable
	CacheTranslations = core.CacheTranslations

	WithPageSize = core.WithPageSize
	WithTier     = core.WithTier
	WithLockable = core.WithLockable
)

// API errors.
var (
	ErrNotFound = core.ErrNotFound
	ErrExists   = core.ErrExists
	ErrDenied   = core.ErrDenied
	ErrBusy     = core.ErrBusy
	ErrLayout   = core.ErrLayout
	ErrInvalid  = core.ErrInvalid
	// ErrProcessDead reports a syscall by a process that exited or crashed.
	ErrProcessDead = core.ErrProcessDead
	// ErrNoCheckpoint: Restore found fresh NVM with no committed image.
	ErrNoCheckpoint = core.ErrNoCheckpoint
	// ErrCorruptCheckpoint: a checkpoint exists but no generation validates.
	ErrCorruptCheckpoint = core.ErrCorruptCheckpoint
)

// Observability (package stats): machine-wide cycle accounting by category,
// TLB/page-table counters, and an optional bounded trace ring. Enable with
// System.EnableStats (or Machine.EnableStats), read with System.Stats.
type (
	// Stats is an immutable point-in-time snapshot of every counter.
	Stats = stats.Snapshot
	// StatsSink is the live collector installed by EnableStats.
	StatsSink = stats.Sink
	// Tracer is the bounded ring of typed trace events.
	Tracer = stats.Tracer
	// TraceEvent is one trace record (VAS switch, segment attach, fault
	// firing, URPC retry).
	TraceEvent = stats.Event
)

// Fault injection (package fault): a deterministic, seedable registry of
// named injection points threaded through the simulated machine. Attach one
// with Machine.SetFaults and arm points to rehearse crashes, torn NVM
// writes, allocation failures, and lossy RPC.
type (
	// FaultRegistry owns the armed injection points.
	FaultRegistry = fault.Registry
	// FaultPolicy decides whether a point fires on a given hit.
	FaultPolicy = fault.Policy
)

// NewFaults creates a fault registry whose probabilistic points derive
// their independent random streams from seed.
func NewFaults(seed int64) *FaultRegistry { return fault.New(seed) }

// Fault-point firing policies.
var (
	FaultOnNth       = fault.OnNth
	FaultFromNth     = fault.FromNth
	FaultAlways      = fault.Always
	FaultProbability = fault.Probability
)

// Injection point names wired through the stack.
const (
	FaultMemAlloc         = fault.MemAlloc
	FaultMemWriteTorn     = fault.MemWriteTorn
	FaultCoreSyscallCrash = fault.CoreSyscallCrash
	FaultURPCDrop         = fault.URPCDrop
	FaultURPCDelay        = fault.URPCDelay
)

// Machine configurations of the paper's Table 1 platforms.
var (
	M1 = hw.M1
	M2 = hw.M2
	M3 = hw.M3
)

// Memory tiers for System.SetSegmentTier: NVM-backed segments survive
// Machine power cycles and can be checkpointed/restored (§7).
const (
	TierDRAM = mem.TierDRAM
	TierNVM  = mem.TierNVM
)

// DefaultMachine returns a modest simulated machine suitable for examples
// and tests: 2 sockets x 4 cores, 2 GiB DRAM plus a 512 MiB persistent NVM
// tier.
func DefaultMachine() MachineConfig {
	return MachineConfig{
		Name: "default", Sockets: 2, CoresPerSocket: 4, GHz: 2.5,
		Mem: mem.Config{DRAMSize: 2 << 30, NVMSize: 512 << 20},
		TLB: tlb.DefaultConfig, Cost: hw.DefaultCost,
	}
}

// NewMachine boots a simulated machine.
func NewMachine(cfg MachineConfig) *Machine { return hw.NewMachine(cfg) }

// NewDragonFly boots a SpaceJMP system with the DragonFly BSD personality
// (paper §4.1): in-kernel VAS management reached by syscalls, ACL security.
func NewDragonFly(cfg MachineConfig) *System {
	return kernel.New(hw.NewMachine(cfg))
}

// NewDragonFlyOn boots the DragonFly personality on an existing machine —
// the path a reboot takes: the machine (and its NVM) survives,
// the OS instance is fresh, and System.Restore reattaches persistent VASes.
func NewDragonFlyOn(m *Machine) *System { return kernel.New(m) }

// NewBarrelfish boots a SpaceJMP system with the Barrelfish personality
// (paper §4.2): user-space VAS service over typed capabilities, switches by
// capability invocation. The returned service grants capabilities across
// processes.
func NewBarrelfish(cfg MachineConfig) (*System, *caps.Service) {
	return caps.New(hw.NewMachine(cfg))
}
