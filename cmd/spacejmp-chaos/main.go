// Command spacejmp-chaos runs declarative chaos scenarios against the
// clustered SpaceJMP stack and checks their invariants. Each run is fully
// self-contained: it boots the scenario's simulated machine and cluster,
// drives it with the closed-loop verifying load generator while the step
// schedule arms and disarms fault-registry rules (and kills nodes), then
// asserts the declared invariants from the stats snapshot, the trace ring,
// and the leak/drain checks. Exit status is 0 only if every invariant held.
//
// Usage:
//
//	spacejmp-chaos -scenario name          run one library scenario
//	spacejmp-chaos -spec file.json         run a JSON scenario file
//	spacejmp-chaos -all                    run the whole library
//	spacejmp-chaos -list                   list library scenarios
//	spacejmp-chaos -scenario name -dump    print a scenario as JSON
//	              [-seed n] [-machine name] [-json] [-quiet] [-no-admin]
//	              [-soak d] [-soak-iters n]
//
// -seed and -machine override the scenario's own values (a different seed
// replays the same timeline with different probabilistic firings). The
// admin surface and its /stats/delta watcher are on by default so every
// run also exercises the streaming endpoint; -no-admin disables that.
//
// Soak mode repeats the selected scenario(s) with rotating seeds — seed,
// seed+1, seed+2, … — until a wall-clock budget (-soak 10m) or an
// iteration cap (-soak-iters 50) runs out, whichever comes first, and
// stops at the first failing iteration with that run's full report and the
// seed needed to replay it. This is the cheap way to hunt
// schedule-dependent bugs: one seed is one timeline, a soak is a sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"spacejmp/internal/chaos"
)

func main() {
	scenario := flag.String("scenario", "", "library scenario name to run")
	specFile := flag.String("spec", "", "JSON scenario file to run")
	all := flag.Bool("all", false, "run every library scenario")
	list := flag.Bool("list", false, "list the library scenarios")
	dump := flag.Bool("dump", false, "print the selected scenario as JSON instead of running it")
	seed := flag.Int64("seed", 0, "override the scenario seed (0 = use the spec's)")
	machine := flag.String("machine", "", "override the scenario machine (small, M1, M2, M3)")
	jsonOut := flag.Bool("json", false, "emit the run report(s) as JSON")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	noAdmin := flag.Bool("no-admin", false, "skip the admin surface and /stats/delta watcher")
	soak := flag.Duration("soak", 0, "soak mode: repeat with rotating seeds until this wall-clock budget expires")
	soakIters := flag.Int("soak-iters", 0, "soak mode: iteration cap (with -soak, whichever runs out first)")
	flag.Parse()

	if *list {
		for _, s := range chaos.Library() {
			fmt.Printf("%-28s %s\n", s.Name, s.Description)
		}
		return
	}

	var specs []*chaos.Spec
	switch {
	case *all:
		specs = chaos.Library()
	case *scenario != "":
		s, ok := chaos.Lookup(*scenario)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q (have %v)", *scenario, chaos.Names()))
		}
		specs = []*chaos.Spec{s}
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		s, err := chaos.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
		specs = []*chaos.Spec{s}
	default:
		fatal(fmt.Errorf("nothing to do: want -scenario, -spec, -all, or -list"))
	}

	if *seed != 0 {
		for _, s := range specs {
			s.Seed = *seed
		}
	}
	if *dump {
		for _, s := range specs {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(s); err != nil {
				fatal(err)
			}
		}
		return
	}

	opts := chaos.Options{Machine: *machine, Admin: !*noAdmin}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *soak > 0 || *soakIters > 0 {
		runSoak(specs, opts, *soak, *soakIters)
		return
	}
	failed := 0
	var reports []*chaos.Report
	for _, s := range specs {
		rep, err := chaos.Run(s, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s.Name, err))
		}
		reports = append(reports, rep)
		if !rep.Passed {
			failed++
		}
		if !*jsonOut {
			rep.WriteText(os.Stdout)
		}
	}
	if *jsonOut {
		var v any = reports
		if len(reports) == 1 {
			v = reports[0]
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "spacejmp-chaos: %d of %d scenarios failed\n", failed, len(reports))
		os.Exit(1)
	}
}

// runSoak repeats the selected scenarios with rotating seeds (each spec's
// base seed plus the iteration number) until the wall-clock budget or the
// iteration cap runs out. The first failing iteration stops the soak with
// its full report — the printed seed replays that exact timeline.
func runSoak(specs []*chaos.Spec, opts chaos.Options, budget time.Duration, iters int) {
	base := make([]int64, len(specs))
	for i, s := range specs {
		base[i] = s.Seed
		if base[i] == 0 {
			// The runner treats 0 as "default seed 1"; start the rotation
			// there so iteration 0 isn't a duplicate of iteration 1.
			base[i] = 1
		}
	}
	start := time.Now()
	done := 0
	for i := 0; iters == 0 || i < iters; i++ {
		if budget > 0 && time.Since(start) >= budget {
			break
		}
		for j, s := range specs {
			s.Seed = base[j] + int64(i)
			t0 := time.Now()
			rep, err := chaos.Run(s, opts)
			if err != nil {
				fatal(fmt.Errorf("soak iter %d: %s: %w", i, s.Name, err))
			}
			if !rep.Passed {
				rep.WriteText(os.Stdout)
				fmt.Fprintf(os.Stderr,
					"spacejmp-chaos: soak: %s failed at iteration %d after %d clean runs (replay with -scenario %s -seed %d)\n",
					s.Name, i, done, s.Name, s.Seed)
				os.Exit(1)
			}
			done++
			fmt.Printf("soak iter %d: %s (seed %d): PASS in %v\n",
				i, s.Name, s.Seed, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Printf("soak: %d runs clean in %v\n", done, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spacejmp-chaos: %v\n", err)
	os.Exit(1)
}
