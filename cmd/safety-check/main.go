// Command safety-check runs the SpaceJMP compiler analysis (paper §4.3) on
// a textual IR program: it reports every dereference and pointer store that
// cannot be proven safe, and can emit the instrumented program or execute
// it with runtime checks.
//
// Usage:
//
//	safety-check [-instrument] [-O] [-run] [-oracle] file.sjir
//
// With no file, the program is read from standard input.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"spacejmp/internal/safety"
)

func main() {
	instrument := flag.Bool("instrument", false, "print the program with runtime checks inserted")
	optimize := flag.Bool("O", false, "elide provably redundant checks after instrumenting")
	run := flag.Bool("run", false, "execute the instrumented program with checks enabled")
	oracle := flag.Bool("oracle", false, "execute uninstrumented and report dynamic violations")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := safety.Parse(src)
	if err != nil {
		fatal(err)
	}

	a := safety.Analyze(prog)
	diags := a.Diagnostics()
	if len(diags) == 0 {
		fmt.Println("analysis: all dereferences and pointer stores proven safe")
	}
	for _, d := range diags {
		fmt.Printf("analysis: %s\n", d)
	}

	if *instrument {
		inst, _ := safety.Instrument(prog)
		if *optimize {
			var removed int
			inst, removed = safety.OptimizeChecks(inst)
			fmt.Printf("optimizer: removed %d redundant checks\n", removed)
		}
		fmt.Print(inst.String())
	}
	if *oracle {
		ip := safety.NewInterp(prog, safety.ModeOracle)
		if _, err := ip.Run(); err != nil {
			fatal(err)
		}
		for _, v := range ip.Violations() {
			fmt.Printf("oracle: %s\n", v)
		}
		if len(ip.Violations()) == 0 {
			fmt.Println("oracle: execution observed no violations")
		}
	}
	if *run {
		inst, _ := safety.Instrument(prog)
		if *optimize {
			inst, _ = safety.OptimizeChecks(inst)
		}
		ret, err := safety.NewInterp(inst, safety.ModeChecked).Run()
		switch {
		case errors.Is(err, safety.ErrCheckFailed):
			fmt.Printf("checked run: TRAP: %v\n", err)
			os.Exit(2)
		case err != nil:
			fatal(err)
		default:
			fmt.Printf("checked run: ok, returned %v\n", ret)
		}
	}
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safety-check:", err)
	os.Exit(1)
}
