// Command vasctl drives a simulated SpaceJMP system interactively: create
// and inspect VASes and segments, attach, switch, and peek/poke memory.
// It reads commands from the arguments (joined by ';') or, with none, line
// by line from standard input.
//
// Commands:
//
//	vas <name> <mode>                create a VAS (mode octal, e.g. 660)
//	seg <name> <base> <size> <perm>  create a segment (perm r|rw|rx|rwx)
//	attach-seg <vas> <seg> <perm>    map a segment into a VAS
//	attach <vas>                     attach the process; prints the handle
//	switch <handle|primary>          switch the thread
//	poke <addr> <value>              store a 64-bit value
//	peek <addr>                      load a 64-bit value
//	tag <vas>                        assign a TLB tag
//	ls                               list VASes and segments
//	stats                            machine-wide observability counters
//	trace                            recent trace events (switches, attaches)
//
// Numbers accept 0x prefixes and k/m/g suffixes.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spacejmp"
	"spacejmp/internal/arch"
)

type shell struct {
	sys     *spacejmp.System
	th      *spacejmp.Thread
	handles map[string]spacejmp.Handle
	vases   map[string]spacejmp.VASID
	segs    map[string]spacejmp.SegID
}

func main() {
	sys := spacejmp.NewDragonFly(spacejmp.DefaultMachine())
	sys.EnableStats(256) // before the first process, so every PT is observed
	proc, err := sys.NewProcess(spacejmp.Creds{UID: uint32(os.Getuid()), GID: uint32(os.Getgid())})
	if err != nil {
		fatal(err)
	}
	th, err := proc.NewThread()
	if err != nil {
		fatal(err)
	}
	sh := &shell{sys: sys, th: th,
		handles: map[string]spacejmp.Handle{}, vases: map[string]spacejmp.VASID{}, segs: map[string]spacejmp.SegID{}}

	if len(os.Args) > 1 {
		for _, cmd := range strings.Split(strings.Join(os.Args[1:], " "), ";") {
			if err := sh.run(strings.Fields(strings.TrimSpace(cmd))); err != nil {
				fatal(err)
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("vasctl> ")
	for sc.Scan() {
		if err := sh.run(strings.Fields(sc.Text())); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		fmt.Print("vasctl> ")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vasctl:", err)
	os.Exit(1)
}

func (s *shell) run(args []string) error {
	if len(args) == 0 {
		return nil
	}
	switch args[0] {
	case "vas":
		if len(args) != 3 {
			return fmt.Errorf("usage: vas <name> <mode>")
		}
		mode, err := strconv.ParseUint(args[2], 8, 16)
		if err != nil {
			return err
		}
		vid, err := s.th.VASCreate(args[1], uint16(mode))
		if err != nil {
			return err
		}
		s.vases[args[1]] = vid
		fmt.Printf("vas %q = id %d\n", args[1], vid)
	case "seg":
		if len(args) != 5 {
			return fmt.Errorf("usage: seg <name> <base> <size> <perm>")
		}
		base, err := parseNum(args[2])
		if err != nil {
			return err
		}
		size, err := parseNum(args[3])
		if err != nil {
			return err
		}
		perm, err := parsePerm(args[4])
		if err != nil {
			return err
		}
		sid, err := s.th.SegAlloc(args[1], spacejmp.VirtAddr(base), size, perm)
		if err != nil {
			return err
		}
		s.segs[args[1]] = sid
		fmt.Printf("segment %q = id %d at %#x (+%d)\n", args[1], sid, base, size)
	case "attach-seg":
		if len(args) != 4 {
			return fmt.Errorf("usage: attach-seg <vas> <seg> <perm>")
		}
		perm, err := parsePerm(args[3])
		if err != nil {
			return err
		}
		return s.th.SegAttachVAS(s.vases[args[1]], s.segs[args[2]], perm)
	case "attach":
		if len(args) != 2 {
			return fmt.Errorf("usage: attach <vas>")
		}
		h, err := s.th.VASAttach(s.vases[args[1]])
		if err != nil {
			return err
		}
		s.handles[args[1]] = h
		fmt.Printf("attached %q as handle %d\n", args[1], h)
	case "switch":
		if len(args) != 2 {
			return fmt.Errorf("usage: switch <vas|primary>")
		}
		h := spacejmp.PrimaryHandle
		if args[1] != "primary" {
			var ok bool
			if h, ok = s.handles[args[1]]; !ok {
				return fmt.Errorf("not attached to %q", args[1])
			}
		}
		if err := s.th.VASSwitch(h); err != nil {
			return err
		}
		fmt.Printf("now in %s\n", args[1])
	case "poke":
		if len(args) != 3 {
			return fmt.Errorf("usage: poke <addr> <value>")
		}
		addr, err := parseNum(args[1])
		if err != nil {
			return err
		}
		val, err := parseNum(args[2])
		if err != nil {
			return err
		}
		return s.th.Store64(spacejmp.VirtAddr(addr), val)
	case "peek":
		if len(args) != 2 {
			return fmt.Errorf("usage: peek <addr>")
		}
		addr, err := parseNum(args[1])
		if err != nil {
			return err
		}
		v, err := s.th.Load64(spacejmp.VirtAddr(addr))
		if err != nil {
			return err
		}
		fmt.Printf("%#x: %d (%#x)\n", addr, v, v)
	case "tag":
		if len(args) != 2 {
			return fmt.Errorf("usage: tag <vas>")
		}
		return s.th.VASCtl(s.vases[args[1]], spacejmp.SetTag())
	case "ls":
		for name, vid := range s.vases {
			v, err := s.sys.VASByID(vid)
			if err != nil {
				continue
			}
			fmt.Printf("vas %-12s id=%d mode=%o tag=%d attachments=%d\n",
				name, vid, v.Mode, v.Tag(), v.AttachCount())
			for _, m := range v.Mappings() {
				fmt.Printf("  seg %-12s %v +%d %v lockable=%v\n",
					m.Seg.Name, m.Seg.Base, m.Seg.Size, m.Perm, m.Seg.Lockable())
			}
		}
		for name, sid := range s.segs {
			seg, err := s.sys.SegByID(sid)
			if err != nil {
				continue
			}
			fmt.Printf("seg %-12s id=%d %v +%d %v\n", name, sid, seg.Base, seg.Size, seg.Perm())
		}
	case "stats":
		st := s.th.Core.Stats()
		fmt.Printf("cycles=%d tlb-hits=%d tlb-misses=%d faults=%d cr3-loads=%d switches=%d\n",
			s.th.Core.Cycles(), st.TLBHits, st.TLBMisses, st.Faults, st.CR3Loads, s.sys.Switches())
		return s.sys.Stats().WriteText(os.Stdout)
	case "trace":
		for _, ev := range s.sys.Tracer().Events() {
			fmt.Println(ev)
		}
	case "help":
		fmt.Println("commands: vas seg attach-seg attach switch poke peek tag ls stats trace")
	default:
		return fmt.Errorf("unknown command %q (try help)", args[0])
	}
	return nil
}

func parseNum(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"), strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	return v * mult, err
}

func parsePerm(s string) (spacejmp.Perm, error) {
	var p spacejmp.Perm
	for _, ch := range s {
		switch ch {
		case 'r':
			p |= arch.PermRead
		case 'w':
			p |= arch.PermWrite
		case 'x':
			p |= arch.PermExec
		default:
			return 0, fmt.Errorf("bad perm %q", s)
		}
	}
	return p, nil
}
