// Command spacejmp-server runs the RESP/TCP serving layer over the
// simulated SpaceJMP machine. By default a sharded worker pool serves every
// command by switching into one shared RedisJMP VAS (§5.3); with -cluster N
// the key space is instead hashed across N shard nodes behind a router, and
// each node is reached either on the shared-VAS fast path (co-resident) or
// over urpc cache-line channels (remote) — both sides of Figure 7 in one
// process, selected per node by -mode. Drive it with cmd/spacejmp-load or
// any RESP client (GET, SET, DEL, MGET, PING, ECHO, QUIT).
//
// Usage:
//
//	spacejmp-server [-addr host:port] [-shards n] [-queue n] [-pipeline n]
//	                [-seg bytes] [-tags] [-machine M1|M2|M3|small] [-trace n]
//	                [-cluster n] [-mode vas|urpc|auto] [-workers n]
//	                [-admin host:port] [-replicate] [-ship-every n]
//	                [-kill-node n] [-kill-after d]
//	                [-add-node-after d] [-remove-node n] [-remove-node-after d]
//	                [-scenario name|file.json] [-fault-seed n]
//	                [-tenants n] [-tenant-max-bytes n] [-tenant-max-keys n]
//	                [-tenant-rate n]
//	                [-deadline d] [-breakers] [-breaker-threshold n]
//	                [-breaker-cooldown d] [-degraded-reads] [-queue-watermark n]
//
// The overload-protection flags: -deadline stamps every command with a
// cycle budget (converted from wall time at the machine's clock; clients
// override per connection with the DEADLINE <ms> prefix command) that the
// router refuses to overspend — a remote hop it cannot afford answers a
// retryable -DEADLINE instead of queueing doomed work. -breakers arms a
// closed→open→half-open circuit breaker per remote cluster node: tripped
// by consecutive call/probe failures, an open breaker sheds writes fast
// with -SHARDTIMEOUT while READONLY reads (or all reads, with
// -degraded-reads) degrade to the node's frozen fork view within the
// staleness bound. -queue-watermark extends the same degradation to local
// nodes when a worker's queue backs up.
//
// With -tenants N, the server runs multi-tenant: N demo tenants (ids t0..,
// secrets s0..) are registered, every connection must AUTH before touching
// data, each tenant works an isolated per-tenant view of the store, and
// cross-view access is answered -NOPERM unless a capability grant allows
// it. The -tenant-* flags set each tenant's quotas (0 = unlimited); the
// admin surface grows a /tenants endpoint with per-tenant usage and
// counters.
//
// With -admin, a plain HTTP surface serves /healthz, /stats (the live
// observability snapshot as JSON, including the armed fault rules),
// /stats/delta (long-poll delta stream), and /trace?n= (the newest
// trace-ring events) while the server runs; with a replicated cluster,
// /stats grows a cluster_runtime block and /healthz turns 503 when a key
// range degrades. With -replicate, every remote cluster node gets a warm
// standby kept fresh by checkpoint shipping and a health monitor that
// fails its key range over on crash; -kill-node/-kill-after stage a
// crash for failover experiments. -add-node-after grows the cluster by one
// node mid-run (and rebalances a fair share of placement slots onto it);
// -remove-node/-remove-node-after drain a node's slots to the rest of the
// cluster and retire it — both run live, under whatever traffic clients
// are sending.
//
// With -scenario, the named chaos-library scenario (or a JSON scenario
// file) plays its step timeline against this server's live fault registry:
// only the steps are used — the server keeps its own -cluster/-machine
// shape and serves whatever clients connect, so invariants are not checked
// here (use cmd/spacejmp-chaos for a full self-contained run). The step
// outcomes are reported on drain.
//
// On SIGINT/SIGTERM the server drains gracefully — stops accepting,
// finishes in-flight commands, detaches every worker from the shared VASes
// (the kernel reaper verifies frame reclamation) — and dumps the stats
// snapshot, including per-shard counters and latency histograms, to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spacejmp/internal/chaos"
	"spacejmp/internal/cluster"
	"spacejmp/internal/fault"
	"spacejmp/internal/hw"
	"spacejmp/internal/kernel"
	"spacejmp/internal/overload"
	"spacejmp/internal/server"
	"spacejmp/internal/tenant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6379", "listen address")
	shards := flag.Int("shards", 2, "worker shards (each claims one simulated core)")
	queue := flag.Int("queue", 64, "per-shard queue depth (full queue replies busy)")
	pipeline := flag.Int("pipeline", 32, "per-connection in-flight command cap")
	segSize := flag.Uint64("seg", 16<<20, "shared store segment bytes")
	tags := flag.Bool("tags", false, "enable TLB tags on the server VASes")
	machine := flag.String("machine", "M1", "simulated machine: M1, M2, M3, small")
	traceCap := flag.Int("trace", 4096, "trace ring capacity (0 disables tracing)")
	jsonOut := flag.Bool("json", false, "dump the final stats snapshot as JSON")
	clusterN := flag.Int("cluster", 0, "shard the key space across n cluster nodes (0 = single store)")
	modeFlag := flag.String("mode", "auto", "cluster node placement: vas, urpc, or auto")
	workers := flag.Int("workers", 0, "cluster router workers (0 = -shards)")
	adminAddr := flag.String("admin", "", "HTTP admin address for /healthz, /stats, /trace (empty disables)")
	replicate := flag.Bool("replicate", false, "replicate remote cluster nodes to warm standbys with failover")
	shipEvery := flag.Int("ship-every", 0, "ship a node's checkpoint after this many writes (0 = default)")
	followerReads := flag.Bool("follower-reads", false, "serve READONLY-connection reads from frozen fork views (needs -replicate)")
	staleBound := flag.Duration("stale-bound", 0, "follower-read staleness bound; older views reply -STALE (0 = default 500ms)")
	probeInterval := flag.Duration("probe-interval", 0, "health-monitor probe cadence (0 = default 25ms)")
	probeThreshold := flag.Int("probe-threshold", 0, "consecutive probe failures that declare a node dead and promote its standby (0 = default 3; park high to brown out without failover)")
	killNode := flag.Int("kill-node", -1, "crash this cluster node after -kill-after (testing failover)")
	killAfter := flag.Duration("kill-after", 2*time.Second, "delay before -kill-node fires")
	addNodeAfter := flag.Duration("add-node-after", 0, "add one cluster node (and rebalance slots onto it) after this delay (0 disables)")
	removeNode := flag.Int("remove-node", -1, "drain and remove this cluster node after -remove-node-after")
	removeNodeAfter := flag.Duration("remove-node-after", 2*time.Second, "delay before -remove-node fires")
	scenario := flag.String("scenario", "", "play this chaos scenario's steps against the live fault registry (library name or JSON file)")
	faultSeed := flag.Int64("fault-seed", 1, "fault registry seed for -scenario runs")
	tenantsN := flag.Int("tenants", 0, "serve n demo tenants (t0../s0..) behind AUTH with isolated views (0 = single-tenant)")
	tenantMaxBytes := flag.Uint64("tenant-max-bytes", 0, "per-tenant stored-bytes quota (0 = unlimited)")
	tenantMaxKeys := flag.Uint64("tenant-max-keys", 0, "per-tenant key-count quota (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant command rate limit per second (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "default per-command deadline budget, converted to cycles at the machine's clock (0 = none; clients override with DEADLINE <ms>)")
	breakers := flag.Bool("breakers", false, "arm a circuit breaker per remote cluster node (needs -cluster)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that trip a breaker (0 = default 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker fail-fast window before a half-open probe (0 = default 100ms)")
	degradedReads := flag.Bool("degraded-reads", false, "serve overload-degraded reads from stale fork views to every connection, not just READONLY (needs -replicate)")
	queueWatermark := flag.Int("queue-watermark", 0, "worker queue depth past which reads degrade to stale views (0 disables; needs -replicate)")
	flag.Parse()

	cfg, err := hw.NamedConfig(*machine)
	if err != nil {
		fatal(err)
	}
	var spec *chaos.Spec
	if *scenario != "" {
		if spec, err = loadScenario(*scenario); err != nil {
			fatal(err)
		}
	}
	if *followerReads && !*replicate {
		fatal(fmt.Errorf("-follower-reads requires -replicate (frozen fork views ride the replication engine)"))
	}
	if (*degradedReads || *queueWatermark > 0) && !*replicate {
		fatal(fmt.Errorf("-degraded-reads/-queue-watermark require -replicate (degraded reads serve from fork views)"))
	}
	if (*breakers || *degradedReads || *queueWatermark > 0) && *clusterN <= 0 {
		fatal(fmt.Errorf("-breakers/-degraded-reads/-queue-watermark require -cluster"))
	}
	if *replicate {
		// Replication rides NVM checkpoint generations; give machines
		// configured without persistent memory enough to hold them.
		if cfg.Mem.NVMSize == 0 {
			cfg.Mem.NVMSize = 256 << 20
		}
		if cfg.Mem.NVMSuperblock == 0 {
			cfg.Mem.NVMSuperblock = 64 << 20
		}
	}
	m := hw.NewMachine(cfg)
	reg := fault.New(*faultSeed)
	m.SetFaults(reg)
	sys := kernel.New(m)
	sys.EnableStats(*traceCap)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	base := m.PM.AllocatedBytes()
	var tenants *tenant.Registry
	if *tenantsN > 0 {
		nodes := *clusterN
		if nodes <= 0 {
			nodes = 1
		}
		tenants, err = tenant.NewDemo(*tenantsN, tenant.Config{Nodes: nodes, Stats: m.Observer()},
			tenant.Quotas{MaxBytes: *tenantMaxBytes, MaxKeys: *tenantMaxKeys, Rate: *tenantRate})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spacejmp-server: %s\n", tenants)
	}
	srvCfg := server.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		PipelineDepth: *pipeline,
		SegSize:       *segSize,
		Tags:          *tags,
		Tenants:       tenants,
		// Wall-clock deadlines become cycle budgets at the machine's clock;
		// the same rate converts each client DEADLINE <ms> override.
		CyclesPerMilli: uint64(cfg.GHz * 1e6),
	}
	if *deadline > 0 {
		srvCfg.DeadlineCycles = overload.Cycles(*deadline, cfg.GHz)
	}
	var srv *server.Server
	var router *cluster.Router
	if *clusterN > 0 {
		mode, err := cluster.ParseMode(*modeFlag)
		if err != nil {
			fatal(err)
		}
		if *workers <= 0 {
			*workers = *shards
		}
		router, err = cluster.New(sys, cluster.Config{
			Nodes:      *clusterN,
			Workers:    *workers,
			Mode:       mode,
			QueueDepth: *queue,
			SegSize:    *segSize,
			Replication: cluster.ReplicationConfig{
				Enabled:        *replicate,
				ShipEvery:      *shipEvery,
				FollowerReads:  *followerReads,
				StaleBound:     *staleBound,
				ProbeInterval:  *probeInterval,
				ProbeThreshold: *probeThreshold,
			},
			Overload: cluster.OverloadConfig{
				Breakers:         *breakers,
				BreakerThreshold: *breakerThreshold,
				BreakerCooldown:  *breakerCooldown,
				DegradedReads:    *degradedReads,
				QueueWatermark:   *queueWatermark,
			},
		})
		if err != nil {
			fatal(err)
		}
		srv = server.NewWithBackend(sys, ln, srvCfg, router)
		fmt.Fprintf(os.Stderr, "spacejmp-server: listening on %s (%s, queue %d, pipeline %d)\n",
			srv.Addr(), cfg.Name, *queue, *pipeline)
		fmt.Fprint(os.Stderr, router.String())
		if *killNode >= 0 {
			go func(id int, after time.Duration) {
				time.Sleep(after)
				if err := router.KillNode(id); err != nil {
					fmt.Fprintf(os.Stderr, "spacejmp-server: kill-node: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "spacejmp-server: crashed node %d\n", id)
			}(*killNode, *killAfter)
		}
		if *addNodeAfter > 0 {
			go func(after time.Duration) {
				time.Sleep(after)
				id, err := router.AddNode()
				if err != nil {
					fmt.Fprintf(os.Stderr, "spacejmp-server: add-node: %v\n", err)
					return
				}
				moved, err := router.RebalanceInto(id)
				if err != nil {
					fmt.Fprintf(os.Stderr, "spacejmp-server: add-node: rebalance onto %d: %v\n", id, err)
					return
				}
				fmt.Fprintf(os.Stderr, "spacejmp-server: added node %d (%d slots migrated onto it)\n", id, moved)
			}(*addNodeAfter)
		}
		if *removeNode >= 0 {
			go func(id int, after time.Duration) {
				time.Sleep(after)
				if err := router.RemoveNode(id); err != nil {
					fmt.Fprintf(os.Stderr, "spacejmp-server: remove-node: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "spacejmp-server: drained and removed node %d\n", id)
			}(*removeNode, *removeNodeAfter)
		}
	} else {
		srv, err = server.New(sys, ln, srvCfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spacejmp-server: listening on %s (%s, %d shards, queue %d, pipeline %d)\n",
			srv.Addr(), cfg.Name, *shards, *queue, *pipeline)
	}

	var admin *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(fmt.Errorf("admin: %w", err))
		}
		// The explicit nil guard matters: assigning a nil *cluster.Router
		// straight into the interface would make it non-nil.
		var cl server.ClusterStatus
		if router != nil {
			cl = router
		}
		admin = &http.Server{Handler: server.AdminHandler(sys, cl, tenants)}
		go admin.Serve(aln)
		fmt.Fprintf(os.Stderr, "spacejmp-server: admin on http://%s (/healthz /stats /trace)\n",
			aln.Addr())
	}

	var sched *chaos.ScheduleRun
	schedCtx, schedCancel := context.WithCancel(context.Background())
	defer schedCancel()
	if spec != nil {
		var ops chaos.Ops
		if router != nil {
			ops = chaos.Ops{
				Kill: router.KillNode,
				AddNode: func() (int, error) {
					id, err := router.AddNode()
					if err != nil {
						return 0, err
					}
					if _, err := router.RebalanceInto(id); err != nil {
						return id, err
					}
					return id, nil
				},
				RemoveNode:  router.RemoveNode,
				MigrateSlot: router.MigrateSlot,
			}
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "spacejmp-server: "+format+"\n", args...)
		}
		fmt.Fprintf(os.Stderr, "spacejmp-server: playing scenario %s (%d steps, seed %d)\n",
			spec.Name, len(spec.Steps), *faultSeed)
		sched = chaos.StartSchedule(schedCtx, spec.Steps, reg, ops, logf)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	fmt.Fprintln(os.Stderr, "spacejmp-server: draining...")
	if sched != nil {
		schedCancel()
		reports, _ := sched.Wait(context.Background())
		chaos.FinalizeReports(reg, spec.Steps, reports)
		for _, r := range reports {
			line := fmt.Sprintf("spacejmp-server: scenario step %d: %s fired %d/%d", r.Step, r.Point, r.Fired, r.Hits)
			if r.Err != "" {
				line += " err=" + r.Err
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "spacejmp-server: shutdown: %v\n", err)
	}
	if admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(ctx)
		cancel()
	}
	if err := m.PM.CheckLeaks(base); err != nil {
		fmt.Fprintf(os.Stderr, "spacejmp-server: leak check: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "spacejmp-server: all simulated frames reclaimed")
	}

	snap := sys.Stats()
	if snap == nil {
		return
	}
	if *jsonOut {
		if b, err := snap.JSON(); err == nil {
			os.Stderr.Write(append(b, '\n'))
		}
		return
	}
	snap.WriteText(os.Stderr)
}

// loadScenario resolves a -scenario argument: a library name first, then a
// JSON scenario file.
func loadScenario(arg string) (*chaos.Spec, error) {
	if spec, ok := chaos.Lookup(arg); ok {
		return spec, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: not a library scenario (have %v) and %w",
			arg, chaos.Names(), err)
	}
	return chaos.ParseSpec(data)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spacejmp-server: %v\n", err)
	os.Exit(1)
}
