// Command spacejmp-bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated machines and prints them as text tables.
//
// Usage:
//
//	spacejmp-bench [-quick] [experiment ...]
//
// Experiments: table1 table2 fig1 fig6 fig7 fig8 fig9 fig10a fig10b fig10c
// fig11 fig12 ablations, or "all" (the default). -quick reduces sweep sizes
// for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"spacejmp/internal/experiments"
	"spacejmp/internal/gups"
)

var quick = flag.Bool("quick", false, "reduced sweeps for a fast run")

func main() {
	flag.Parse()
	sel := map[string]bool{}
	for _, a := range flag.Args() {
		sel[a] = true
	}
	if len(sel) == 0 || sel["all"] {
		sel = map[string]bool{"table1": true, "table2": true, "fig1": true, "fig6": true,
			"fig7": true, "fig8": true, "fig9": true, "fig10a": true, "fig10b": true,
			"fig10c": true, "fig11": true, "fig12": true, "ablations": true,
			"counters": true}
	}
	runners := []struct {
		name string
		fn   func() error
	}{
		{"table1", table1}, {"table2", table2}, {"fig1", fig1}, {"fig6", fig6},
		{"fig7", fig7}, {"fig8", fig8}, {"fig9", fig9},
		{"fig10a", fig10a}, {"fig10b", fig10b}, {"fig10c", fig10c},
		{"fig11", fig11}, {"fig12", fig12}, {"ablations", ablations},
		{"counters", counters},
	}
	for _, r := range runners {
		if !sel[r.name] {
			continue
		}
		if err := r.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "spacejmp-bench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
	}
}

func header(title string) *tabwriter.Writer {
	fmt.Printf("\n== %s ==\n", title)
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table1() error {
	w := header("Table 1: Large-memory platforms")
	fmt.Fprintln(w, "Name\tMemory\tProcessors\tFreq.")
	for _, r := range experiments.Table1() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2f GHz\n", r.Name, r.Memory, r.CPUs, r.GHz)
	}
	return w.Flush()
}

func table2() error {
	rows, err := experiments.Table2()
	if err != nil {
		return err
	}
	w := header("Table 2: Context switch breakdown (M2, cycles; bold columns = tags enabled)")
	fmt.Fprintln(w, "Operation\tDragonFly\tDragonFly(tags)\tBarrelfish\tBarrelfish(tags)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", r.Operation, r.DragonFly, r.DragonFlyT, r.Barrelfish, r.BarrelfishT)
	}
	return w.Flush()
}

func fig1() error {
	maxPow := 32
	if *quick {
		maxPow = 26
	}
	pts, err := experiments.Fig1(maxPow)
	if err != nil {
		return err
	}
	w := header("Figure 1: mmap/munmap cost by region size (4 KiB pages, M2)")
	fmt.Fprintln(w, "Region\tmap ms\tunmap ms\tmap(cached) ms\tunmap(cached) ms\tPT nodes\tPT nodes(cached)")
	for _, p := range pts {
		fmt.Fprintf(w, "2^%d\t%.4f\t%.4f\t%.6f\t%.6f\t%d\t%d\n",
			p.SizePow, p.MapMs, p.UnmapMs, p.MapCachedMs, p.UnmapCachedMs, p.MapNodes, p.MapCachedNodes)
	}
	return w.Flush()
}

func fig6() error {
	counts := []int{64, 128, 256, 512, 768, 1024, 1536, 2048}
	touches := 2000
	if *quick {
		counts = []int{64, 512, 2048}
		touches = 400
	}
	pts, err := experiments.Fig6(counts, touches)
	if err != nil {
		return err
	}
	w := header("Figure 6: TLB tagging on a random-access workload (M3, cycles/page-touch)")
	fmt.Fprintln(w, "Pages\tSwitch(TagOff)\tSwitch(TagOn)\tNo switch\tmisses(off)\tmisses(on)\tmisses(none)")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			p.Pages, p.SwitchTagOff, p.SwitchTagOn, p.NoSwitch, p.MissTagOff, p.MissTagOn, p.MissNone)
	}
	return w.Flush()
}

func fig7() error {
	sizes := []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}
	if *quick {
		sizes = []int{4, 4096, 262144}
	}
	pts, err := experiments.Fig7(sizes)
	if err != nil {
		return err
	}
	w := header("Figure 7: URPC vs SpaceJMP as local RPC (Barrelfish on M2, cycles)")
	fmt.Fprintln(w, "Transfer\tURPC L\tURPC X\tSpaceJMP")
	for _, p := range pts {
		fmt.Fprintf(w, "%dB\t%d\t%d\t%d\n", p.Bytes, p.URPCLocal, p.URPCCross, p.SpaceJMP)
	}
	return w.Flush()
}

func gupsCfg() gups.Config {
	cfg := gups.Config{WindowSize: 4 << 20, UpdateSet: 64, Visits: 256, Seed: 42}
	if *quick {
		cfg.Visits = 64
		cfg.WindowSize = 1 << 20
	}
	return cfg
}

func gupsWindows() []int {
	if *quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

func fig8() error {
	pts, err := experiments.Fig8(gupsWindows(), []int{16, 64}, gupsCfg())
	if err != nil {
		return err
	}
	w := header("Figure 8: GUPS across designs (M3, MUPS per process)")
	fmt.Fprintln(w, "Windows\tUpdateSet\tSpaceJMP\tMP\tMAP")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.2f\n", p.Windows, p.UpdateSet, p.SpaceJMP, p.MP, p.MAP)
	}
	return w.Flush()
}

func fig9() error {
	pts, err := experiments.Fig9(gupsWindows(), []int{16, 64}, gupsCfg())
	if err != nil {
		return err
	}
	w := header("Figure 9: SpaceJMP GUPS rates (tags disabled, 1k/sec)")
	fmt.Fprintln(w, "Windows\tUpdateSet\tVAS switches k/s\tTLB misses k/s")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\n", p.Windows, p.UpdateSet, p.SwitchK, p.TLBMissK)
	}
	return w.Flush()
}

var fig10Cache *experiments.Fig10

func fig10Data() (*experiments.Fig10, error) {
	if fig10Cache != nil {
		return fig10Cache, nil
	}
	var err error
	fig10Cache, err = experiments.RunFig10(16 << 20)
	return fig10Cache, err
}

func fig10a() error {
	f, err := fig10Data()
	if err != nil {
		return err
	}
	w := header("Figure 10a: Redis GET throughput (M1, requests/second)")
	fmt.Fprintln(w, "Clients\tRedisJMP\tRedisJMP(tags)\tRedis\tRedis 6x")
	for i, k := range f.Clients {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
			k, f.GetJmp[i].RPS, f.GetJmpTags[i].RPS, f.GetRedis[i].RPS, f.GetRedis6x[i].RPS)
	}
	return w.Flush()
}

func fig10b() error {
	f, err := fig10Data()
	if err != nil {
		return err
	}
	w := header("Figure 10b: Redis SET throughput (M1, requests/second)")
	fmt.Fprintln(w, "Clients\tRedisJMP\tRedis")
	for i, k := range f.Clients {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", k, f.SetJmp[i].RPS, f.SetRedis[i].RPS)
	}
	return w.Flush()
}

func fig10c() error {
	f, err := fig10Data()
	if err != nil {
		return err
	}
	w := header("Figure 10c: throughput vs SET percentage (M1, 12 clients)")
	fmt.Fprintln(w, "SET %\tRedisJMP\tRedis")
	for i, pct := range f.MixPcts {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", pct, f.MixJmp[i].RPS, f.MixRedis[i].RPS)
	}
	return w.Flush()
}

func samRecords() int {
	if *quick {
		return 300
	}
	return 1500
}

func fig11() error {
	rows, err := experiments.Fig11(samRecords(), 11)
	if err != nil {
		return err
	}
	w := header("Figure 11: SAMTools serialization formats vs SpaceJMP (simulated seconds; paper normalizes)")
	fmt.Fprintln(w, "Operation\tSAM\tBAM\tSpaceJMP\tSpaceJMP/SAM")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%.2f\n", r.Op, r.SAM, r.BAM, r.SpaceJMP, r.SpaceJMP/r.SAM)
	}
	return w.Flush()
}

func fig12() error {
	rows, err := experiments.Fig12(samRecords(), 11)
	if err != nil {
		return err
	}
	w := header("Figure 12: mmap vs SpaceJMP in SAMTools (simulated seconds)")
	fmt.Fprintln(w, "Operation\tMMAP\tSpaceJMP\tSpaceJMP/MMAP")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.2f\n", r.Op, r.Mmap, r.SpaceJMP, r.SpaceJMP/r.Mmap)
	}
	return w.Flush()
}

func counters() error {
	cfg := gupsCfg().WithWindows(4)
	r, err := experiments.GUPSCounters(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\n== GUPS counters (SpaceJMP design, %d windows, observability enabled) ==\n", cfg.Windows)
	fmt.Printf("%.2f MUPS over %d updates\n", r.MUPS, r.Updates)
	return r.Stats.WriteText(os.Stdout)
}

func ablations() error {
	w := header("Ablations (DESIGN.md)")
	print := func(rows []experiments.AblationRow, err error) error {
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.2f %s\n", r.Label, r.Value, r.Unit)
		}
		return nil
	}
	if err := print(experiments.AblationTagPolicy(gupsCfg().WithWindows(4))); err != nil {
		return err
	}
	if err := print(experiments.AblationSegCache([]int{20, 24})); err != nil {
		return err
	}
	if err := print(experiments.AblationLockGranularity()); err != nil {
		return err
	}
	if err := print(experiments.AblationPopulate(24)); err != nil {
		return err
	}
	if err := print(experiments.AblationPageSize(26, 2000)); err != nil {
		return err
	}
	if err := print(experiments.AblationHugeGUPS(gupsCfg().WithWindows(4))); err != nil {
		return err
	}
	return w.Flush()
}
