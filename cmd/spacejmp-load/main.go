// Command spacejmp-load is a closed-loop RESP load generator for
// cmd/spacejmp-server: N connections each keep a fixed pipeline of mixed
// GET/SET/MGET commands in flight, values are deterministic binary bytes
// (embedded CRLF included) so every reply is verified element by element,
// and per-command latency percentiles are reported at the end. It doubles
// as the integration harness the serving-layer and cluster tests run
// in-process. Against a -cluster server, MGETs fan out across shard nodes,
// so -mget is the knob that exercises the multi-key VAS-vs-urpc contrast.
//
// Usage:
//
//	spacejmp-load [-addr host:port] [-conns n] [-pipeline n] [-n requests]
//	              [-set-percent p] [-mget p] [-mget-keys n]
//	              [-keys n] [-value bytes] [-seed s] [-reconnect]
//	              [-tenants n] [-auth] [-cross-check n]
//	              [-stale-reads] [-stale-bound d] [-stale-check n]
//
// With -reconnect, a connection that loses its transport (a chaos scenario
// dropping conns, a server mid-failover) redials and works through its
// remaining quota instead of failing the run; survived disconnects are
// reported alongside the verification counters.
//
// With -tenants N -auth, the load runs multi-tenant against a server booted
// with the same -tenants N: connection i authenticates as demo tenant
// t(i%N) and works that tenant's view, values verified against the
// tenant-qualified key so views never silently alias. With two or more
// tenants, every -cross-check'th command probes another tenant's view; the
// only correct reply is -NOPERM, and any data reply is reported (and fails
// the run) as a cross-view leak.
//
// With -stale-reads, every connection opts into follower reads (READONLY)
// against a cluster server running with -follower-reads, and interleaves
// versioned staleness probes into the mix: each probe GET must return either
// a version no older than -stale-bound or the typed -STALE refusal. A stale
// version served silently is a staleness-bound violation and fails the run.
// Set -stale-bound to the server's bound plus shipping slack.
package main

import (
	"flag"
	"fmt"
	"os"

	"spacejmp/internal/server"
)

func main() {
	cfg := server.LoadConfig{}
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:6379", "server address")
	flag.IntVar(&cfg.Conns, "conns", 64, "concurrent connections")
	flag.IntVar(&cfg.Pipeline, "pipeline", 8, "commands in flight per connection")
	flag.IntVar(&cfg.Requests, "n", 1024, "commands per connection")
	flag.IntVar(&cfg.SetPercent, "set-percent", 20, "percentage of SETs in the mix")
	flag.IntVar(&cfg.MGetPercent, "mget", 0, "percentage of MGETs in the mix (carved from the GET share)")
	flag.IntVar(&cfg.MGetKeys, "mget-keys", 4, "keys per MGET")
	flag.IntVar(&cfg.Keys, "keys", 512, "keyspace size")
	flag.IntVar(&cfg.ValueSize, "value", 64, "value size in bytes")
	flag.Int64Var(&cfg.Seed, "seed", 1, "per-connection PRNG seed base")
	flag.BoolVar(&cfg.Reconnect, "reconnect", false, "redial on transport failure instead of aborting the run")
	flag.IntVar(&cfg.Tenants, "tenants", 0, "spread connections across n demo tenants (needs -auth)")
	flag.BoolVar(&cfg.Auth, "auth", false, "AUTH each connection with its demo tenant credentials")
	flag.IntVar(&cfg.CrossCheckEvery, "cross-check", 0, "probe another tenant's view every n commands (0 = default 32; needs 2+ tenants)")
	flag.BoolVar(&cfg.StaleReads, "stale-reads", false, "opt connections into follower reads (READONLY) and verify the staleness bound with versioned probes")
	flag.DurationVar(&cfg.StaleBound, "stale-bound", 0, "verifying staleness bound for probe GETs (0 = default 1s; set to server bound plus slack)")
	flag.IntVar(&cfg.StaleCheckEvery, "stale-check", 0, "issue a staleness probe every n commands (0 = default 8)")
	flag.DurationVar(&cfg.Deadline, "deadline", 0, "stamp every command with this deadline budget (DEADLINE prefix command; 0 = server default)")
	flag.Parse()

	res, err := server.RunLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spacejmp-load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("commands  %d (%d GET, %d SET, %d MGET) in %v\n",
		res.Commands, res.Gets, res.Sets, res.MGets, res.Elapsed.Round(1e6))
	fmt.Printf("throughput  %.0f cmd/s\n", res.Throughput())
	fmt.Printf("latency  mean %.0fns  p50 ≤%dns  p99 ≤%dns  max %dns\n",
		res.Latency.Mean(), res.Latency.Quantile(0.50),
		res.Latency.Quantile(0.99), res.Latency.Max)
	fmt.Printf("busy  %d  errors  %d  mismatches  %d  disconnects  %d\n",
		res.Busy, res.Errors, res.Mismatches, res.Disconnects)
	if cfg.Tenants > 0 && cfg.Auth {
		fmt.Printf("tenant  cross-denied  %d  cross-leaks  %d  quota-rejected  %d\n",
			res.CrossDenied, res.CrossLeaks, res.QuotaRejected)
	}
	if cfg.StaleReads {
		fmt.Printf("stale  probes  %d  rejected  %d  violations  %d\n",
			res.StaleProbes, res.StaleRejected, res.StaleViolations)
	}
	if res.Mismatches > 0 || res.Errors > 0 || res.CrossLeaks > 0 || res.StaleViolations > 0 {
		os.Exit(1)
	}
}
