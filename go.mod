module spacejmp

go 1.24
